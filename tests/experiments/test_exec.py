"""The execution engine: specs, executors, caching, and determinism.

The load-bearing guarantees under test:

- serial and process-parallel execution produce **identical** sweep
  summaries and rendered figure tables for the same spec;
- substrate caching (topologies + SPF routes) never changes results and
  reports its hit/miss/eviction activity through ``repro.obs``;
- :class:`ExperimentSpec` validates eagerly, hashes, and survives a JSON
  round-trip with a stable content key.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.exec import (
    ExperimentSpec,
    ParallelExecutor,
    SerialExecutor,
    SubstrateCache,
    make_executor,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import SweepPoint, run_spec_sweep, run_sweep
from repro.obs import Observability

#: Small but non-trivial spec shared by the determinism tests.
SPEC = ExperimentSpec(
    n=30,
    group_size=8,
    alpha=0.4,
    sweep_parameter="d_thresh",
    sweep_values=(0.1, 0.3),
    topologies=2,
    member_sets=2,
)


def point_digest(point):
    """Everything observable about a sweep point, exactly."""
    return (
        point.label,
        point.parameter,
        point.average_degree,
        point.cost_relative,
        point.delay_relative,
        point.unrecoverable_members,
        [r.summary() for r in point.scenarios],
        [(r.source, tuple(r.members)) for r in point.scenarios],
    )


class TestExperimentSpec:
    def test_defaults_match_paper_setup(self):
        spec = ExperimentSpec()
        assert spec.n == 100 and spec.group_size == 30
        assert spec.topologies == 10 and spec.member_sets == 10

    def test_hashable_and_equal(self):
        assert hash(SPEC) == hash(ExperimentSpec(**SPEC.to_dict()))
        assert SPEC == ExperimentSpec(**SPEC.to_dict())

    def test_sweep_values_list_normalised_to_tuple(self):
        spec = ExperimentSpec(sweep_values=[0.1, 0.2])
        assert spec.sweep_values == (0.1, 0.2)
        hash(spec)

    def test_json_round_trip_preserves_identity(self):
        again = ExperimentSpec.from_json(SPEC.to_json())
        assert again == SPEC
        assert again.key() == SPEC.key()

    def test_key_is_content_addressed(self):
        assert SPEC.key() != ExperimentSpec(
            **{**SPEC.to_dict(), "seed_offset": 1}
        ).key()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown ExperimentSpec"):
            ExperimentSpec.from_dict({"n": 30, "frobnicate": 1})

    def test_from_json_rejects_malformed_text(self):
        with pytest.raises(ConfigurationError, match="invalid ExperimentSpec"):
            ExperimentSpec.from_json("{not json")
        with pytest.raises(ConfigurationError, match="must be an object"):
            ExperimentSpec.from_json("[1, 2]")

    @pytest.mark.parametrize(
        "bad",
        [
            {"sweep_parameter": "beta"},
            {"sweep_values": ()},
            {"sweep_values": (0.1, 0.1)},
            {"topologies": 0},
            {"member_sets": 0},
            {"seed_offset": -1},
        ],
    )
    def test_eager_structural_validation(self, bad):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(**bad)

    def test_swept_values_validated_eagerly(self):
        # d_thresh must stay in [0, ...): a negative swept value is
        # rejected at spec construction, not inside a worker later.
        with pytest.raises(ConfigurationError):
            ExperimentSpec(sweep_values=(0.1, -0.2))

    def test_base_params_may_be_invalid_for_swept_parameter(self):
        # Sweeping group_size over small values with the default base
        # group_size (30) >= n is fine: the swept value replaces it.
        spec = ExperimentSpec(
            n=30, sweep_parameter="group_size", sweep_values=(5.0, 10.0),
            topologies=1, member_sets=1,
        )
        assert [c.group_size for c in spec.scenario_configs()] == [5, 10]

    def test_points_share_the_seed_grid_across_values(self):
        seeds = [
            [(c.topology_seed, c.member_seed) for c in configs]
            for _, configs in SPEC.points()
        ]
        assert seeds[0] == seeds[1]

    def test_swept_values_coerced_to_field_type(self):
        spec = ExperimentSpec(
            n=30, sweep_parameter="group_size", sweep_values=(5.0,),
            topologies=1, member_sets=1,
        )
        (config,) = spec.scenario_configs()
        assert isinstance(config.group_size, int)


class TestScenarioValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            {"n": 1},
            {"group_size": 0},
            {"n": 10, "group_size": 10},
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"beta": 0.0},
            {"d_thresh": -0.1},
            {"knowledge": "psychic"},
        ],
    )
    def test_config_rejects_bad_params_at_construction(self, bad):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(**bad)

    def test_sweep_point_requires_scenarios(self):
        with pytest.raises(ConfigurationError, match="no scenarios"):
            SweepPoint(label="0.3", parameter=0.3, scenarios=[])


class TestSubstrateCache:
    def test_cached_run_matches_uncached(self):
        config = ScenarioConfig(n=30, group_size=8, alpha=0.4)
        plain = run_scenario(config)
        cached = run_scenario(config, cache=SubstrateCache())
        assert plain.summary() == cached.summary()
        assert plain.source == cached.source and plain.members == cached.members

    def test_topology_hits_and_misses_counted(self):
        obs = Observability()
        cache = SubstrateCache()
        config = ScenarioConfig(n=30, group_size=8, alpha=0.4)
        run_scenario(config, obs=obs, cache=cache)
        # Same topology seed, different member set: topology is a hit.
        run_scenario(
            config.with_seeds(topology_seed=0, member_seed=7),
            obs=obs,
            cache=cache,
        )
        counters = obs.metrics.snapshot()["counters"]
        assert counters["cache.topology.misses"] == 1
        assert counters["cache.topology.hits"] == 1
        assert counters["cache.routes.misses"] > 0
        assert counters["cache.routes.hits"] > 0

    def test_route_cache_eviction_bound_holds(self):
        obs = Observability()
        cache = SubstrateCache(max_routes=4)
        config = ScenarioConfig(n=30, group_size=8, alpha=0.4)
        run_scenario(config, obs=obs, cache=cache)
        stats = cache.stats["routes"]
        assert stats["size"] <= 4
        assert stats["evictions"] > 0
        counters = obs.metrics.snapshot()["counters"]
        assert counters["cache.routes.evictions"] == stats["evictions"]

    def test_cache_stats_and_clear(self):
        cache = SubstrateCache()
        cache.topology_for(ScenarioConfig(n=20, group_size=4))
        assert cache.stats["topologies"]["size"] == 1
        cache.clear()
        assert cache.stats["topologies"]["size"] == 0


class TestMakeExecutor:
    def test_kinds(self):
        assert isinstance(make_executor("serial", jobs=1), SerialExecutor)
        parallel = make_executor("process", jobs=2)
        assert isinstance(parallel, ParallelExecutor) and parallel.jobs == 2
        parallel.close()

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError, match="jobs must be >= 1"):
            make_executor("serial", jobs=0)
        with pytest.raises(ConfigurationError, match="requires --executor"):
            make_executor("serial", jobs=2)
        with pytest.raises(ConfigurationError, match="unknown executor"):
            make_executor("threads", jobs=1)

    def test_parallel_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(jobs=0)


class TestDeterminism:
    """Serial and parallel execution are observably identical."""

    def test_serial_vs_parallel_sweep_points_identical(self):
        with SerialExecutor() as ex:
            serial = ex.run_sweep(SPEC)
        with ParallelExecutor(jobs=2) as ex:
            parallel = ex.run_sweep(SPEC)
        assert [point_digest(p) for p in serial] == [
            point_digest(p) for p in parallel
        ]

    def test_serial_vs_parallel_rendered_figure_identical(self):
        from repro.experiments.fig8 import run_figure8

        kwargs = dict(
            values=[0.1, 0.3], n=30, group_size=8, topologies=2, member_sets=2
        )
        with SerialExecutor() as ex:
            serial = run_figure8(executor=ex, **kwargs).render()
        with ParallelExecutor(jobs=2) as ex:
            parallel = run_figure8(executor=ex, **kwargs).render()
        assert serial == parallel

    def test_cached_sweep_matches_legacy_run_sweep(self):
        # The executor path (with substrate caching) reproduces exactly
        # what the per-value run_sweep API computes.
        legacy = run_sweep(
            lambda d: ScenarioConfig(n=30, group_size=8, alpha=0.4, d_thresh=d),
            [0.1, 0.3],
            topologies=2,
            member_sets=2,
        )
        spec_points = run_spec_sweep(SPEC)
        assert [point_digest(p) for p in legacy] == [
            point_digest(p) for p in spec_points
        ]

    def test_parallel_merges_worker_obs_counters(self):
        obs_serial, obs_parallel = Observability(), Observability()
        with SerialExecutor() as ex:
            ex.run_sweep(SPEC, obs=obs_serial)
        with ParallelExecutor(jobs=2) as ex:
            ex.run_sweep(SPEC, obs=obs_parallel)
        serial = obs_serial.metrics.snapshot()["counters"]
        parallel = obs_parallel.metrics.snapshot()["counters"]
        # Algorithm counters merge to identical totals...
        for name in ("scenario.runs", "smrp.joins", "exec.scenarios"):
            assert parallel[name] == serial[name], name
        # ...and cache *totals* agree even though the hit/miss split
        # differs (per-worker caches see fewer cross-scenario hits).
        for family in ("cache.topology", "cache.routes"):
            assert (
                parallel[f"{family}.hits"] + parallel[f"{family}.misses"]
                == serial[f"{family}.hits"] + serial[f"{family}.misses"]
            ), family
        assert parallel["exec.worker_reports_merged"] == 8

    def test_parallel_jobs_one_works(self):
        with ParallelExecutor(jobs=1) as ex:
            (result,) = ex.map_scenarios(
                [ScenarioConfig(n=24, group_size=5, alpha=0.5)]
            )
        assert len(result.members) == 5

    def test_disabled_obs_ships_no_worker_reports(self):
        with ParallelExecutor(jobs=2) as ex:
            results = ex.map_scenarios(
                [
                    ScenarioConfig(n=24, group_size=5, alpha=0.5),
                    ScenarioConfig(n=24, group_size=5, alpha=0.5, member_seed=1),
                ]
            )
        assert len(results) == 2


class TestExecutorLifecycle:
    def test_run_sweep_groups_points_in_spec_order(self):
        with SerialExecutor() as ex:
            points = ex.run_sweep(SPEC)
        assert [p.label for p in points] == ["0.1", "0.3"]
        assert all(len(p.scenarios) == 4 for p in points)

    def test_close_is_idempotent(self):
        ex = ParallelExecutor(jobs=1)
        ex.map_scenarios([ScenarioConfig(n=20, group_size=4, alpha=0.5)])
        ex.close()
        ex.close()

    def test_serial_executor_reuses_cache_across_calls(self):
        obs = Observability()
        config = ScenarioConfig(n=24, group_size=5, alpha=0.5)
        with SerialExecutor() as ex:
            ex.map_scenarios([config], obs=obs)
            ex.map_scenarios([config], obs=obs)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["cache.topology.hits"] >= 1
