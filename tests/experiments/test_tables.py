"""Tests for text-table rendering."""

from repro.experiments.tables import format_percent, format_summary, format_table
from repro.metrics.stats import summarize


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"],
            [["a", "1"], ["long-name", "23"]],
        )
        lines = table.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1, "all rows must align to the same width"

    def test_separator_row(self):
        table = format_table(["x"], [["1"]])
        assert "-" in table.splitlines()[1]

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2

    def test_cell_wider_than_header(self):
        table = format_table(["h"], [["wide-cell-content"]])
        header_line = table.splitlines()[0]
        assert header_line.endswith("h")
        assert len(header_line) == len("wide-cell-content")


class TestFormatters:
    def test_percent(self):
        assert format_percent(0.2) == "+20.0%"
        assert format_percent(-0.053) == "-5.3%"

    def test_summary(self):
        text = format_summary(summarize([0.1, 0.2, 0.3]))
        assert text.startswith("+20.0%")
        assert "±" in text
