"""Tests for result export (CSV/JSON/Markdown)."""

import csv
import io
import json

import pytest

from repro.experiments.fig7 import run_figure7
from repro.experiments.report import (
    scatter_to_csv,
    sweep_to_csv,
    sweep_to_json,
    sweep_to_markdown,
)
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweeps import run_sweep


@pytest.fixture(scope="module")
def points():
    return run_sweep(
        lambda d: ScenarioConfig(n=30, group_size=6, alpha=0.6, d_thresh=d),
        values=[0.1, 0.4],
        topologies=2,
        member_sets=1,
    )


@pytest.fixture(scope="module")
def fig7():
    return run_figure7(topologies=2, n=30, group_size=6, alpha=0.6)


class TestCsv:
    def test_sweep_csv_parses(self, points):
        text = sweep_to_csv("d_thresh", points)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["d_thresh"] == "0.1"
        assert float(rows[0]["rd_relative_mean"]) == pytest.approx(
            points[0].rd_relative.mean, abs=1e-6
        )
        assert float(rows[1]["avg_degree"]) > 1.0

    def test_ci_bounds_ordered(self, points):
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv("p", points))))
        for row in rows:
            assert float(row["rd_relative_ci_low"]) <= float(
                row["rd_relative_ci_high"]
            )

    def test_scatter_csv(self, fig7):
        rows = list(csv.DictReader(io.StringIO(scatter_to_csv(fig7))))
        assert len(rows) == len(fig7.points)
        for row in rows:
            assert float(row["rd_global"]) > 0


class TestJson:
    def test_round_trip(self, points):
        payload = json.loads(sweep_to_json("d_thresh", points))
        assert payload["parameter"] == "d_thresh"
        assert len(payload["points"]) == 2
        first = payload["points"][0]
        assert first["scenarios"] == 2
        assert first["rd_relative"]["n"] > 0
        assert first["rd_relative"]["ci_low"] <= first["rd_relative"]["mean"]


class TestMarkdown:
    def test_table_structure(self, points):
        text = sweep_to_markdown("Effect of D_thresh", "D_thresh", points)
        lines = text.splitlines()
        assert lines[0] == "## Effect of D_thresh"
        assert lines[2].startswith("| D_thresh |")
        assert len([l for l in lines if l.startswith("| 0")]) == 2
        assert "±" in text
