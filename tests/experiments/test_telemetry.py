"""Live telemetry through the executors: lifecycle records, heartbeats,
and hang attribution.

The invariant mirrored from the resilience suite: telemetry is
observe-only.  Every executor run here is checked byte-equal against the
clean serial ground truth while a hub collects its records.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.exec import (
    ExecPolicy,
    ExperimentSpec,
    ParallelExecutor,
    ResilientExecutor,
    SerialExecutor,
    make_executor,
)
from repro.experiments.exec.worker import HANG_SPAN
from repro.obs import Observability, TelemetryHub, TelemetrySink

#: 1 swept value x 2 topologies x 2 member sets = 4 scenario work units.
SPEC = ExperimentSpec(
    n=30,
    group_size=8,
    alpha=0.4,
    sweep_parameter="d_thresh",
    sweep_values=(0.3,),
    topologies=2,
    member_sets=2,
)

FAST = dict(backoff_base=0.0)


class CollectSink(TelemetrySink):
    def __init__(self) -> None:
        self.records = []

    def handle(self, record):
        self.records.append(record)

    def kinds(self):
        return [r["kind"] for r in self.records]


def results_digest(points):
    return [(p.label, [r.to_dict() for r in p.scenarios]) for p in points]


@pytest.fixture(scope="module")
def serial_points():
    with SerialExecutor() as ex:
        return ex.run_sweep(SPEC)


class TestSerialTelemetry:
    def test_lifecycle_records_and_identical_results(self, serial_points):
        sink = CollectSink()
        with TelemetryHub(sinks=[sink]) as hub:
            with SerialExecutor(telemetry=hub) as ex:
                points = ex.run_sweep(SPEC)
        assert results_digest(points) == results_digest(serial_points)
        kinds = sink.kinds()
        assert kinds[0] == "sweep.start"
        assert kinds[-1] == "sweep.finish"
        assert kinds.count("scenario.start") == 4
        assert kinds.count("scenario.finish") == 4
        finishes = [r for r in sink.records if r["kind"] == "scenario.finish"]
        assert all(r["duration_s"] >= 0 for r in finishes)
        assert [r["index"] for r in finishes] == [0, 1, 2, 3]


class TestParallelTelemetry:
    def test_worker_stamped_records_and_identical_results(self, serial_points):
        sink = CollectSink()
        with TelemetryHub(sinks=[sink]) as hub:
            with ParallelExecutor(jobs=2, telemetry=hub) as ex:
                points = ex.run_sweep(SPEC)
        assert results_digest(points) == results_digest(serial_points)
        kinds = sink.kinds()
        assert kinds.count("scenario.start") == 4
        assert kinds.count("scenario.finish") == 4
        starts = [r for r in sink.records if r["kind"] == "scenario.start"]
        # Worker-stamped: each record carries the worker's pid and time.
        assert all("pid" in r and "t" in r for r in starts)

    def test_no_hub_means_no_telemetry_payloads(self, serial_points):
        with ParallelExecutor(jobs=2) as ex:
            points = ex.run_sweep(SPEC)
        assert results_digest(points) == results_digest(serial_points)


class TestResilientTelemetry:
    def test_clean_run_records_and_identical_results(self, serial_points):
        sink = CollectSink()
        with TelemetryHub(sinks=[sink]) as hub:
            with ResilientExecutor(
                jobs=2, policy=ExecPolicy(**FAST), telemetry=hub
            ) as ex:
                points = ex.run_sweep(SPEC)
        assert results_digest(points) == results_digest(serial_points)
        kinds = sink.kinds()
        assert kinds.count("scenario.start") == 4
        assert kinds.count("scenario.finish") == 4

    def test_crash_emits_crash_and_retry_records(self, serial_points):
        sink = CollectSink()
        with TelemetryHub(sinks=[sink]) as hub:
            with ResilientExecutor(
                jobs=2, policy=ExecPolicy(retries=2, **FAST), telemetry=hub
            ) as ex:
                ex.inject_fault(0, "crash")
                points = ex.run_sweep(SPEC)
        assert results_digest(points) == results_digest(serial_points)
        crashes = [r for r in sink.records if r["kind"] == "scenario.crash"]
        retries = [r for r in sink.records if r["kind"] == "scenario.retry"]
        assert len(crashes) == 1 and crashes[0]["index"] == 0
        assert "died without a result" in crashes[0]["reason"]
        assert len(retries) == 1 and retries[0]["attempt"] == 1
        # The scenario still finished (on the retry).
        assert sink.kinds().count("scenario.finish") == 4

    def test_hang_timeout_record_carries_last_heartbeat_spans(
        self, serial_points
    ):
        # The acceptance criterion: an injected hang must yield (1)
        # heartbeat records whose span snapshot shows the hang site, (2)
        # a scenario.timeout record carrying that snapshot, and (3) an
        # exec.timeout observability event with the same attribution —
        # while the sweep's results stay byte-identical to serial.
        sink = CollectSink()
        obs = Observability()
        policy = ExecPolicy(
            timeout=1.0, retries=2, heartbeat_interval=0.05, **FAST
        )
        with TelemetryHub(sinks=[sink]) as hub:
            with ResilientExecutor(
                jobs=2, policy=policy, telemetry=hub
            ) as ex:
                ex.inject_fault(0, "hang")
                points = ex.run_sweep(SPEC, obs=obs)
        assert results_digest(points) == results_digest(serial_points)

        heartbeats = [r for r in sink.records if r["kind"] == "heartbeat"]
        hanging = [r for r in heartbeats if r.get("spans") == [HANG_SPAN]]
        assert hanging, "no heartbeat captured the injected hang span"

        timeouts = [r for r in sink.records if r["kind"] == "scenario.timeout"]
        assert len(timeouts) == 1
        record = timeouts[0]
        assert record["index"] == 0
        assert record["timeout_s"] == 1.0
        assert record["spans"] == [HANG_SPAN]
        assert record["last_heartbeat_elapsed_s"] is not None

        events = [e for e in obs.events if e["kind"] == "exec.timeout"]
        assert events == [
            {"kind": "exec.timeout", "index": 0, "attempt": 0,
             "spans": [HANG_SPAN]}
        ]

    def test_hang_attribution_without_hub_via_obs_event(self, serial_points):
        # Heartbeats also flow when only a timeout is armed, so the
        # exec.timeout event is attributed even with no sinks attached.
        obs = Observability()
        policy = ExecPolicy(
            timeout=1.0, retries=2, heartbeat_interval=0.05, **FAST
        )
        with ResilientExecutor(jobs=2, policy=policy) as ex:
            ex.inject_fault(0, "hang")
            points = ex.run_sweep(SPEC, obs=obs)
        assert results_digest(points) == results_digest(serial_points)
        events = [e for e in obs.events if e["kind"] == "exec.timeout"]
        assert len(events) == 1
        assert events[0]["spans"] == [HANG_SPAN]

    def test_cached_scenarios_publish_cached_finish(self, tmp_path):
        policy = ExecPolicy(
            checkpoint_dir=str(tmp_path / "ckpt"), resume=True, **FAST
        )
        with ResilientExecutor(jobs=2, policy=policy) as ex:
            first = ex.run_sweep(SPEC)
        sink = CollectSink()
        with TelemetryHub(sinks=[sink]) as hub:
            with ResilientExecutor(jobs=2, policy=policy, telemetry=hub) as ex:
                resumed = ex.run_sweep(SPEC)
        assert results_digest(resumed) == results_digest(first)
        finishes = [r for r in sink.records if r["kind"] == "scenario.finish"]
        assert len(finishes) == 4
        assert all(r.get("cached") for r in finishes)
        assert sink.kinds().count("scenario.start") == 0


class TestPolicyAndFactory:
    def test_zero_heartbeat_interval_rejected(self):
        with pytest.raises(ConfigurationError, match="heartbeat_interval"):
            ExecPolicy(heartbeat_interval=0)
        with pytest.raises(ConfigurationError, match="heartbeat_interval"):
            ExecPolicy(heartbeat_interval=-1.0)

    def test_make_executor_threads_telemetry_through(self):
        hub = TelemetryHub()
        for kind in ("serial", "process", "resilient"):
            ex = make_executor(kind, jobs=1, telemetry=hub)
            assert ex.telemetry is hub
            ex.close()

    def test_api_rejects_telemetry_with_explicit_executor(self):
        from repro.api import run_sweep

        hub = TelemetryHub()
        with SerialExecutor() as ex:
            with pytest.raises(ConfigurationError, match="telemetry"):
                run_sweep(SPEC, executor=ex, telemetry=hub)

    def test_api_run_sweep_with_telemetry(self, serial_points):
        from repro.api import run_sweep

        sink = CollectSink()
        with TelemetryHub(sinks=[sink]) as hub:
            points = run_sweep(SPEC, telemetry=hub)
        assert results_digest(points) == results_digest(serial_points)
        assert sink.kinds().count("scenario.finish") == 4
