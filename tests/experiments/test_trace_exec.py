"""Restoration tracing through the executors.

The merge contract: parallel and resilient executors must hand back
exactly the episodes a serial run produces — same ids, same spans, same
analysis — while the sweep results stay byte-identical to a trace-free
run (tracing is observe-only).
"""

import pytest

from repro.experiments.exec import (
    ExecPolicy,
    ExperimentSpec,
    ParallelExecutor,
    ResilientExecutor,
    SerialExecutor,
)
from repro.obs import Observability, RestorationTracer, TraceAnalyzer

#: 1 swept value x 2 topologies x 2 member sets = 4 scenario work units.
SPEC = ExperimentSpec(
    n=30,
    group_size=8,
    alpha=0.4,
    sweep_parameter="d_thresh",
    sweep_values=(0.3,),
    topologies=2,
    member_sets=2,
)

FAST = dict(backoff_base=0.0)


def _traced():
    return Observability(enabled=False, tracer=RestorationTracer())


def results_digest(points):
    return [(p.label, [r.to_dict() for r in p.scenarios]) for p in points]


def episode_digest(tracer):
    return [e.to_dict() for e in sorted(tracer.episodes, key=lambda e: e.episode_id)]


@pytest.fixture(scope="module")
def serial_run():
    obs = _traced()
    with SerialExecutor() as ex:
        points = ex.run_sweep(SPEC, obs=obs)
    return points, obs.tracer


class TestSerialTracing:
    def test_episodes_collected_and_results_untouched(self, serial_run):
        points, tracer = serial_run
        assert tracer.episodes
        assert TraceAnalyzer(tracer.episodes).check() == []
        with SerialExecutor() as ex:
            untraced = ex.run_sweep(SPEC)
        assert results_digest(points) == results_digest(untraced)

    def test_episode_ids_carry_scenario_content_keys(self, serial_run):
        _, tracer = serial_run
        keys = {e.scenario_key for e in tracer.episodes}
        assert len(keys) == 4  # one content key per scenario work unit
        assert all(
            e.episode_id.startswith(f"ep-{e.scenario_key}-")
            for e in tracer.episodes
        )


class TestParallelTracing:
    def test_identical_to_serial(self, serial_run):
        points, serial_tracer = serial_run
        obs = _traced()
        with ParallelExecutor(jobs=2) as ex:
            parallel_points = ex.run_sweep(SPEC, obs=obs)
        assert results_digest(parallel_points) == results_digest(points)
        assert episode_digest(obs.tracer) == episode_digest(serial_tracer)
        assert TraceAnalyzer(obs.tracer.episodes).render() == TraceAnalyzer(
            serial_tracer.episodes
        ).render()


class TestResilientTracing:
    def test_identical_to_serial(self, serial_run):
        points, serial_tracer = serial_run
        obs = _traced()
        with ResilientExecutor(jobs=2, policy=ExecPolicy(**FAST)) as ex:
            res_points = ex.run_sweep(SPEC, obs=obs)
        assert results_digest(res_points) == results_digest(points)
        assert episode_digest(obs.tracer) == episode_digest(serial_tracer)

    def test_crash_retry_does_not_duplicate_episodes(self, serial_run):
        points, serial_tracer = serial_run
        obs = _traced()
        with ResilientExecutor(
            jobs=2, policy=ExecPolicy(retries=2, **FAST)
        ) as ex:
            ex.inject_fault(0, "crash")
            res_points = ex.run_sweep(SPEC, obs=obs)
        assert results_digest(res_points) == results_digest(points)
        # The crashed attempt shipped no report; only the successful
        # retry's episodes arrive, so the trace matches serial exactly.
        assert episode_digest(obs.tracer) == episode_digest(serial_tracer)
        assert TraceAnalyzer(obs.tracer.episodes).check() == []
