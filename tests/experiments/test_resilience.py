"""The fault-tolerant executor: crashes, hangs, retries, and resume.

The load-bearing guarantee under test: a sweep's results — down to the
byte in the rendered figure table — are **identical** whether the run was
clean and serial, or survived injected worker crashes, hangs killed at
the timeout, transient errors, and a resume from a partial checkpoint.
Fault handling changes only *when* results arrive, never *what* they are.
"""

import json

import pytest

from repro.errors import CheckpointError, ConfigurationError, RetryExhaustedError
from repro.experiments.exec import (
    CheckpointStore,
    ExecPolicy,
    ExperimentSpec,
    ResilientExecutor,
    SerialExecutor,
    make_executor,
)
from repro.experiments.exec.checkpoint import RESULTS_FILENAME
from repro.experiments.runner import ScenarioResult
from repro.experiments.scenario import ScenarioConfig
from repro.obs import Observability

#: Small but non-trivial spec: 2 swept values x 2 topologies x 2 member
#: sets = 8 scenario work units.
SPEC = ExperimentSpec(
    n=30,
    group_size=8,
    alpha=0.4,
    sweep_parameter="d_thresh",
    sweep_values=(0.1, 0.3),
    topologies=2,
    member_sets=2,
)

#: Retry instantly in tests; the backoff schedule itself is unit-tested.
FAST = dict(backoff_base=0.0)


def results_digest(points):
    """Exact observable content of a sweep result, for equality checks."""
    return [
        (p.label, [r.to_dict() for r in p.scenarios]) for p in points
    ]


@pytest.fixture(scope="module")
def serial_points():
    """The ground-truth clean serial run every faulted run must match."""
    with SerialExecutor() as ex:
        return ex.run_sweep(SPEC)


class TestExecPolicy:
    def test_defaults(self):
        policy = ExecPolicy()
        assert policy.timeout is None
        assert policy.retries == 2
        assert policy.checkpoint_dir is None and not policy.resume

    @pytest.mark.parametrize(
        "bad",
        [
            dict(timeout=0),
            dict(timeout=-1.0),
            dict(retries=-1),
            dict(backoff_base=-0.1),
            dict(backoff_cap=-1.0),
            dict(resume=True),  # resume without a checkpoint dir
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            ExecPolicy(**bad)

    def test_backoff_doubles_and_caps(self):
        policy = ExecPolicy(backoff_base=0.1, backoff_cap=0.35)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)  # capped, not 0.4
        assert policy.backoff(10) == pytest.approx(0.35)


class TestMakeExecutor:
    def test_resilient_kind(self):
        with make_executor("resilient", jobs=2) as ex:
            assert isinstance(ex, ResilientExecutor)
            assert ex.kind == "resilient" and ex.jobs == 2

    def test_policy_requires_resilient_kind(self):
        with pytest.raises(ConfigurationError, match="resilient"):
            make_executor("serial", policy=ExecPolicy())
        with pytest.raises(ConfigurationError, match="resilient"):
            make_executor("process", jobs=2, policy=ExecPolicy())

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            ResilientExecutor(jobs=0)

    def test_rejects_unknown_fault(self):
        with ResilientExecutor(jobs=1) as ex:
            with pytest.raises(ConfigurationError):
                ex.inject_fault(0, "gremlin")
            with pytest.raises(ConfigurationError):
                ex.inject_fault(-1, "crash")


class TestCleanRunParity:
    def test_matches_serial_run_exactly(self, serial_points):
        with ResilientExecutor(jobs=2, policy=ExecPolicy(**FAST)) as ex:
            points = ex.run_sweep(SPEC)
        assert results_digest(points) == results_digest(serial_points)


class TestFaultRecovery:
    def test_crashed_worker_loses_one_attempt_not_the_sweep(
        self, serial_points
    ):
        obs = Observability()
        with ResilientExecutor(
            jobs=2, policy=ExecPolicy(retries=2, **FAST)
        ) as ex:
            ex.inject_fault(0, "crash")
            points = ex.run_sweep(SPEC, obs=obs)
        counters = obs.metrics.counters("exec")
        assert counters["exec.crashes"] == 1
        assert counters["exec.retries"] == 1
        assert results_digest(points) == results_digest(serial_points)

    def test_hung_worker_is_killed_at_the_timeout(self, serial_points):
        obs = Observability()
        with ResilientExecutor(
            jobs=2, policy=ExecPolicy(timeout=1.0, retries=2, **FAST)
        ) as ex:
            ex.inject_fault(1, "hang")
            points = ex.run_sweep(SPEC, obs=obs)
        counters = obs.metrics.counters("exec")
        assert counters["exec.timeouts"] == 1
        assert counters["exec.retries"] == 1
        assert results_digest(points) == results_digest(serial_points)

    def test_transient_error_retries_then_succeeds(self, serial_points):
        obs = Observability()
        with ResilientExecutor(
            jobs=2, policy=ExecPolicy(retries=1, **FAST)
        ) as ex:
            ex.inject_fault(3, "error")
            points = ex.run_sweep(SPEC, obs=obs)
        counters = obs.metrics.counters("exec")
        assert counters["exec.scenario_errors"] == 1
        assert counters["exec.retries"] == 1
        assert results_digest(points) == results_digest(serial_points)

    def test_persistent_fault_exhausts_retries_and_raises(self):
        configs = SPEC.scenario_configs()[:2]
        with ResilientExecutor(
            jobs=1, policy=ExecPolicy(retries=1, **FAST)
        ) as ex:
            ex.inject_fault(0, "crash", persistent=True)
            with pytest.raises(RetryExhaustedError) as excinfo:
                ex.map_scenarios(configs)
        assert excinfo.value.index == 0
        assert excinfo.value.attempts == 2  # first try + one retry
        assert "died without a result" in str(excinfo.value)

    def test_zero_retries_fails_on_first_fault(self):
        configs = SPEC.scenario_configs()[:1]
        with ResilientExecutor(
            jobs=1, policy=ExecPolicy(retries=0, **FAST)
        ) as ex:
            ex.inject_fault(0, "error")
            with pytest.raises(RetryExhaustedError, match="injected transient"):
                ex.map_scenarios(configs)

    def test_worker_interrupt_is_not_reported_as_transient(self, monkeypatch):
        # Ctrl-C hitting the process group must not come back on the pipe
        # as a retryable "error" — the parent is unwinding too, and would
        # otherwise burn retries on attempts interrupted again.
        from repro.experiments.exec import worker

        sent = []

        class FakeConn:
            def send(self, message):
                sent.append(message)

            def close(self):
                pass

        def interrupted(config, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(worker, "run_scenario", interrupted)
        config = SPEC.scenario_configs()[0]
        with pytest.raises(KeyboardInterrupt):
            worker.resilient_worker_main(FakeConn(), config, False)
        assert sent == [("ready",)]  # the handshake, but no "error" report


class TestCheckpointResume:
    def test_faulted_then_resumed_run_matches_serial(
        self, serial_points, tmp_path
    ):
        store_dir = tmp_path / "ckpt"
        obs = Observability()
        with ResilientExecutor(
            jobs=2,
            policy=ExecPolicy(retries=2, checkpoint_dir=str(store_dir), **FAST),
        ) as ex:
            ex.inject_fault(0, "crash")
            ex.inject_fault(5, "error")
            faulted = ex.run_sweep(SPEC, obs=obs)
        counters = obs.metrics.counters("exec")
        assert counters["exec.checkpoint.writes"] == 8
        assert results_digest(faulted) == results_digest(serial_points)

        obs2 = Observability()
        with ResilientExecutor(
            jobs=2,
            policy=ExecPolicy(
                checkpoint_dir=str(store_dir), resume=True, **FAST
            ),
        ) as ex:
            resumed = ex.run_sweep(SPEC, obs=obs2)
        counters2 = obs2.metrics.counters("exec")
        assert counters2["exec.checkpoint.hits"] == 8
        assert "exec.checkpoint.writes" not in counters2  # nothing recomputed
        assert results_digest(resumed) == results_digest(serial_points)

    def test_resume_from_partial_checkpoint(self, serial_points, tmp_path):
        store_dir = tmp_path / "ckpt"
        configs = SPEC.scenario_configs()
        # Seed the store with the first half of the sweep only.
        with SerialExecutor() as warm, CheckpointStore(store_dir) as store:
            for result in warm.map_scenarios(configs[:4]):
                store.put(result.config.content_key(), result)

        obs = Observability()
        with ResilientExecutor(
            jobs=2,
            policy=ExecPolicy(
                checkpoint_dir=str(store_dir), resume=True, **FAST
            ),
        ) as ex:
            points = ex.run_sweep(SPEC, obs=obs)
        counters = obs.metrics.counters("exec")
        assert counters["exec.checkpoint.hits"] == 4
        assert counters["exec.checkpoint.writes"] == 4  # only the second half
        assert results_digest(points) == results_digest(serial_points)

    def test_without_resume_store_is_written_but_not_read(self, tmp_path):
        store_dir = tmp_path / "ckpt"
        configs = SPEC.scenario_configs()[:2]
        policy = ExecPolicy(checkpoint_dir=str(store_dir), **FAST)
        with ResilientExecutor(jobs=1, policy=policy) as ex:
            ex.map_scenarios(configs)
        obs = Observability()
        with ResilientExecutor(jobs=1, policy=policy) as ex:
            ex.map_scenarios(configs, obs=obs)
        counters = obs.metrics.counters("exec")
        assert "exec.checkpoint.hits" not in counters
        # Recomputed results were already stored: duplicate puts are no-ops.
        assert "exec.checkpoint.writes" not in counters

    def test_manifest_written_next_to_results(self, tmp_path):
        store_dir = tmp_path / "ckpt"
        with ResilientExecutor(
            jobs=1, policy=ExecPolicy(checkpoint_dir=str(store_dir), **FAST)
        ) as ex:
            ex.run_sweep(SPEC)
        manifest = store_dir / f"manifest-{SPEC.content_key()}.json"
        assert manifest.exists()
        assert ExperimentSpec.from_json(manifest.read_text()) == SPEC


class TestCheckpointStore:
    def make_result(self, seed=0):
        from repro.experiments.runner import run_scenario

        config = ScenarioConfig(
            n=30, group_size=8, topology_seed=seed, member_seed=seed
        )
        return run_scenario(config)

    def test_round_trip_is_exact(self, tmp_path):
        result = self.make_result()
        key = result.config.content_key()
        with CheckpointStore(tmp_path) as store:
            assert store.put(key, result)
            assert not store.put(key, result)  # duplicate is a no-op
        reloaded = CheckpointStore(tmp_path)
        again = reloaded.get(key)
        assert again == result
        assert again.to_dict() == result.to_dict()
        assert key in reloaded and len(reloaded) == 1

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        result = self.make_result()
        with CheckpointStore(tmp_path) as store:
            store.put(result.config.content_key(), result)
        path = tmp_path / RESULTS_FILENAME
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"store_version": 1, "key": "abc", "resu')  # torn
        store = CheckpointStore(tmp_path)
        assert len(store) == 1  # the torn record is skipped, not fatal

    def test_torn_tail_is_truncated_so_resume_can_append(self, tmp_path):
        # The crash-then-resume sequence the store exists to survive:
        # load() must truncate the torn tail, or the first post-resume
        # put() glues onto the partial line and corrupts *both* records.
        first = self.make_result(seed=0)
        second = self.make_result(seed=1)
        with CheckpointStore(tmp_path) as store:
            store.put(first.config.content_key(), first)
        path = tmp_path / RESULTS_FILENAME
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"store_version": 1, "key": "abc", "resu')  # torn
        with CheckpointStore(tmp_path) as resumed:  # truncates the tail...
            assert resumed.put(second.config.content_key(), second)
        reloaded = CheckpointStore(tmp_path)  # ...so this append is clean
        assert len(reloaded) == 2
        assert reloaded.get(first.config.content_key()) == first
        assert reloaded.get(second.config.content_key()) == second

    def test_missing_final_newline_is_repaired(self, tmp_path):
        # An intact last record whose newline never hit the disk: the
        # record is kept and the next append still starts a fresh line.
        first = self.make_result(seed=0)
        second = self.make_result(seed=1)
        with CheckpointStore(tmp_path) as store:
            store.put(first.config.content_key(), first)
        path = tmp_path / RESULTS_FILENAME
        path.write_bytes(path.read_bytes().rstrip(b"\n"))
        with CheckpointStore(tmp_path) as resumed:
            assert len(resumed) == 1  # the intact record is not dropped
            resumed.put(second.config.content_key(), second)
        reloaded = CheckpointStore(tmp_path)
        assert len(reloaded) == 2
        assert reloaded.get(first.config.content_key()) == first
        assert reloaded.get(second.config.content_key()) == second

    def test_corruption_before_the_tail_is_rejected(self, tmp_path):
        result = self.make_result()
        path = tmp_path / RESULTS_FILENAME
        with CheckpointStore(tmp_path) as store:
            store.put(result.config.content_key(), result)
        good_line = path.read_text()
        path.write_text("not json at all\n" + good_line)
        with pytest.raises(CheckpointError, match="corrupt"):
            CheckpointStore(tmp_path)

    def test_unknown_store_version_is_rejected(self, tmp_path):
        path = tmp_path / RESULTS_FILENAME
        path.write_text(
            json.dumps({"store_version": 99, "key": "k", "result": {}}) + "\n"
            + "{}\n"  # a second line so the bad record is not "torn"
        )
        with pytest.raises(CheckpointError, match="version"):
            CheckpointStore(tmp_path)

    def test_result_payload_version_is_checked(self):
        result = self.make_result()
        payload = result.to_dict()
        payload["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            ScenarioResult.from_dict(payload)

    def test_scenario_content_key_is_stable_and_distinct(self):
        a = ScenarioConfig(n=30, group_size=8)
        b = ScenarioConfig(n=30, group_size=8)
        c = ScenarioConfig(n=30, group_size=8, member_seed=1)
        assert a.content_key() == b.content_key()
        assert a.content_key() != c.content_key()


class TestApiIntegration:
    def test_run_sweep_policy_kwarg(self, serial_points):
        from repro.api import run_sweep

        points = run_sweep(SPEC, jobs=2, policy=ExecPolicy(**FAST))
        assert results_digest(points) == results_digest(serial_points)

    def test_policy_and_executor_are_mutually_exclusive(self):
        from repro.api import run_sweep

        with SerialExecutor() as ex:
            with pytest.raises(ConfigurationError, match="not both"):
                run_sweep(SPEC, executor=ex, policy=ExecPolicy())
