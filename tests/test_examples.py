"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a refactor that breaks one should
fail CI.  Each runs in a subprocess with the repository's environment.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize(
    "script, expected",
    [
        ("quickstart.py", "SMRP shortens this member's recovery path"),
        ("paper_walkthrough.py", "reshaped onto the A-C branch"),
        ("video_conference.py", "conference ends"),
        ("hierarchical_recovery.py", "repaired strictly inside"),
        ("des_protocol_demo.py", "restored at"),
        ("protection_vs_reaction.py", "design point"),
    ],
)
def test_example_runs(script, expected):
    result = run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout


def test_reproduce_figures_single_quick():
    result = run_example("reproduce_figures.py", "--quick", "--figure", "7")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "below y=x" in result.stdout
