"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import (
    figure1_topology,
    figure4_topology,
    grid_topology,
    line_topology,
    ring_topology,
)
from repro.graph.topology import Topology
from repro.graph.waxman import WaxmanConfig, waxman_topology


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def fig1() -> Topology:
    return figure1_topology()


@pytest.fixture
def fig4() -> Topology:
    return figure4_topology()


@pytest.fixture
def grid5() -> Topology:
    return grid_topology(5, 5)


@pytest.fixture
def ring6() -> Topology:
    return ring_topology(6)


@pytest.fixture
def line4() -> Topology:
    return line_topology(4)


@pytest.fixture
def waxman50() -> Topology:
    """A mid-size random topology shared by integration-style tests."""
    return waxman_topology(WaxmanConfig(n=50, alpha=0.25, beta=0.25, seed=42)).topology


@pytest.fixture
def triangle() -> Topology:
    topo = Topology("triangle")
    for n in range(3):
        topo.add_node(n)
    topo.add_link(0, 1, delay=1.0)
    topo.add_link(1, 2, delay=2.0)
    topo.add_link(0, 2, delay=2.5)
    return topo
