"""SpanProfiler: nesting, aggregation, and the disabled no-op path."""

from repro.obs import SpanProfiler
from repro.obs.spans import _NULL_SPAN


def test_nested_spans_form_a_tree():
    prof = SpanProfiler()
    with prof.span("outer"):
        with prof.span("inner"):
            pass
        with prof.span("inner"):
            pass
    report = prof.report()
    (outer,) = report["children"]
    assert outer["name"] == "outer"
    assert outer["calls"] == 1
    (inner,) = outer["children"]
    assert inner["name"] == "inner"
    assert inner["calls"] == 2
    # Parent total covers the children; self time excludes them.
    assert outer["total_s"] >= inner["total_s"]
    assert abs(outer["self_s"] - (outer["total_s"] - inner["total_s"])) < 1e-12


def test_sibling_spans_do_not_nest():
    prof = SpanProfiler()
    with prof.span("a"):
        pass
    with prof.span("b"):
        pass
    names = sorted(c["name"] for c in prof.report()["children"])
    assert names == ["a", "b"]


def test_recursive_span_reuses_node_per_depth():
    prof = SpanProfiler()

    def work(depth):
        with prof.span("rec"):
            if depth:
                work(depth - 1)

    work(2)
    # Three activations total, spread over three depths of the tree.
    calls, total = prof.totals()["rec"]
    assert calls == 3
    assert total > 0


def test_totals_aggregates_across_depths():
    prof = SpanProfiler()
    with prof.span("x"):
        with prof.span("y"):
            pass
    with prof.span("y"):
        pass
    assert prof.totals()["y"][0] == 2
    assert prof.totals()["x"][0] == 1


def test_exception_inside_span_still_closes_it():
    prof = SpanProfiler()
    try:
        with prof.span("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert prof.totals()["boom"][0] == 1
    # The stack unwound back to the root: a new span is a top-level child.
    with prof.span("after"):
        pass
    assert sorted(c["name"] for c in prof.report()["children"]) == ["after", "boom"]


def test_disabled_profiler_returns_shared_null_span():
    prof = SpanProfiler(enabled=False)
    assert prof.span("anything") is _NULL_SPAN
    with prof.span("anything"):
        pass
    assert prof.report()["children"] == []
    assert prof.totals() == {}
