"""Live telemetry: TelemetryHub aggregation, sinks, OpenMetrics export."""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    FlightRecorder,
    Observability,
    OpenMetricsSink,
    ProgressSink,
    TelemetryHub,
    TelemetrySink,
    build_run_report,
    load_flight_record,
    openmetrics_from_snapshot,
    render_flight_record,
    render_openmetrics,
    render_run_report,
)
from repro.obs.registry import MetricsRegistry


class FakeClock:
    """Deterministic wall + monotonic clock for hub tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class CollectSink(TelemetrySink):
    def __init__(self) -> None:
        self.records = []
        self.ticks = []
        self.closed = False

    def handle(self, record):
        self.records.append(record)

    def tick(self, snapshot):
        self.ticks.append(snapshot)

    def close(self):
        self.closed = True


class RaisingSink(TelemetrySink):
    def handle(self, record):
        raise RuntimeError("broken sink")


def make_hub(*sinks, tick_interval=1.0):
    clock = FakeClock()
    hub = TelemetryHub(
        sinks=sinks,
        clock=clock,
        monotonic=clock,
        tick_interval=tick_interval,
    )
    return hub, clock


class TestTelemetryHub:
    def test_records_are_stamped_and_fanned_out(self):
        sink = CollectSink()
        hub, clock = make_hub(sink)
        hub.begin(3, meta={"executor": "serial"})
        record = hub.publish("scenario.start", index=0, attempt=0)
        assert record["v"] == 1
        assert record["t"] == clock.now
        assert sink.records[0]["kind"] == "sweep.start"
        assert sink.records[0]["meta"] == {"executor": "serial"}
        assert sink.records[1] is record

    def test_forward_preserves_worker_timestamp(self):
        sink = CollectSink()
        hub, clock = make_hub(sink)
        hub.begin(1)
        merged = hub.forward(
            {"kind": "heartbeat", "t": 123.0, "spans": ["a"]}, index=0
        )
        assert merged["t"] == 123.0
        assert merged["index"] == 0
        assert hub.last_heartbeat[0]["spans"] == ["a"]

    def test_progress_counters_and_rate(self):
        hub, clock = make_hub()
        hub.begin(4)
        for index in range(2):
            hub.publish("scenario.start", index=index, attempt=0)
            clock.advance(1.0)
            hub.publish(
                "scenario.finish", index=index, attempt=0, duration_s=1.0
            )
        snap = hub.snapshot()
        assert snap["completed"] == 2
        assert snap["rate_per_s"] == pytest.approx(1.0)
        assert snap["eta_s"] == pytest.approx(2.0)
        assert snap["in_flight"] == 0

    def test_snapshot_guards_divisions_on_empty_batch(self):
        hub, clock = make_hub()
        hub.begin(5)
        snap = hub.snapshot()  # zero elapsed, zero completed
        assert snap["rate_per_s"] == 0.0
        assert snap["eta_s"] is None
        clock.advance(10.0)
        snap = hub.snapshot()  # elapsed but still nothing completed
        assert snap["rate_per_s"] == 0.0
        assert snap["eta_s"] is None

    def test_fault_kinds_tallied(self):
        hub, clock = make_hub()
        hub.begin(3)
        hub.publish("scenario.timeout", index=0, attempt=0)
        hub.publish("scenario.crash", index=1, attempt=0)
        hub.publish("scenario.error", index=2, attempt=0)
        hub.publish("scenario.retry", index=0, attempt=1)
        snap = hub.snapshot()
        assert (snap["timeouts"], snap["crashes"], snap["errors"]) == (1, 1, 1)
        assert snap["retries"] == 1
        counters = hub.metrics.counters("telemetry.")
        assert counters["telemetry.scenarios.timeouts"] == 1
        assert counters["telemetry.scenarios.crashes"] == 1
        assert counters["telemetry.scenarios.errors"] == 1
        assert counters["telemetry.scenarios.retries"] == 1

    def test_cached_finish_counts_separately(self):
        hub, clock = make_hub()
        hub.begin(2)
        hub.publish("scenario.finish", index=0, attempt=0, cached=True)
        hub.publish("scenario.finish", index=1, attempt=0, duration_s=0.5)
        snap = hub.snapshot()
        assert snap["completed"] == 2
        assert snap["cached"] == 1

    def test_begin_resets_batch_but_metrics_accumulate(self):
        hub, clock = make_hub()
        hub.begin(1)
        hub.publish("scenario.finish", index=0, attempt=0)
        hub.end()
        hub.begin(1)
        assert hub.completed == 0
        hub.publish("scenario.finish", index=0, attempt=0)
        counters = hub.metrics.counters("telemetry.")
        assert counters["telemetry.scenarios.finished"] == 2

    def test_end_is_idempotent_and_close_closes_sinks(self):
        sink = CollectSink()
        hub, clock = make_hub(sink)
        hub.begin(1)
        hub.end()
        hub.end()
        finishes = [r for r in sink.records if r["kind"] == "sweep.finish"]
        assert len(finishes) == 1
        hub.close()
        assert sink.closed

    def test_raising_sink_is_quarantined_not_fatal(self, capsys):
        good = CollectSink()
        hub, clock = make_hub(RaisingSink(), good)
        hub.begin(1)
        hub.publish("scenario.start", index=0, attempt=0)
        err = capsys.readouterr().err
        assert "RaisingSink" in err and "disabled" in err
        # The good sink saw every record despite its broken neighbour.
        assert [r["kind"] for r in good.records] == [
            "sweep.start", "scenario.start",
        ]

    def test_maybe_tick_throttles_by_interval(self):
        sink = CollectSink()
        hub, clock = make_hub(sink, tick_interval=10.0)
        hub.begin(1)
        baseline = len(sink.ticks)
        hub.maybe_tick()  # within interval of construction tick state
        clock.advance(11.0)
        hub.maybe_tick()
        assert len(sink.ticks) == baseline + 1
        assert "metrics" in sink.ticks[-1]


class TestFlightRecorder:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "flight.ndjson"
        sink = FlightRecorder(path)
        sink.handle({"v": 1, "t": 1.0, "kind": "sweep.start", "total": 2})
        sink.handle({"v": 1, "t": 2.0, "kind": "sweep.finish"})
        sink.close()
        records = load_flight_record(path)
        assert [r["kind"] for r in records] == ["sweep.start", "sweep.finish"]

    def test_torn_trailing_record_is_skipped(self, tmp_path):
        path = tmp_path / "flight.ndjson"
        path.write_text(
            json.dumps({"kind": "sweep.start"}) + "\n" + '{"kind": "scen'
        )
        records = load_flight_record(path)
        assert [r["kind"] for r in records] == ["sweep.start"]

    def test_earlier_corruption_raises(self, tmp_path):
        path = tmp_path / "flight.ndjson"
        path.write_text(
            'not json\n' + json.dumps({"kind": "sweep.finish"}) + "\n"
        )
        with pytest.raises(ConfigurationError, match="corrupt flight record"):
            load_flight_record(path)

    def test_append_repairs_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "flight.ndjson"
        path.write_text('{"kind": "torn')  # killed mid-append, no newline
        sink = FlightRecorder(path)
        sink.handle({"v": 1, "kind": "sweep.start"})
        sink.close()
        # The new record landed on its own line, not glued to the tear.
        records = load_flight_record(path)
        assert [r["kind"] for r in records] == ["sweep.start"]

    def test_render_timeline_and_summary(self, tmp_path):
        records = [
            {"t": 10.0, "kind": "sweep.start", "total": 2},
            {"t": 10.5, "kind": "heartbeat", "index": 0,
             "spans": ["scenario.measure"]},
            {"t": 11.0, "kind": "scenario.timeout", "index": 0, "attempt": 0,
             "timeout_s": 1.0, "spans": ["scenario.measure"]},
            {"t": 12.0, "kind": "sweep.finish", "completed": 2, "total": 2,
             "wall_s": 2.0},
        ]
        text = render_flight_record(records)
        assert "4 records" in text
        assert "TIMED OUT" in text
        assert "scenario.measure" in text
        assert "record kinds:" in text
        limited = render_flight_record(records, last=2)
        assert "2 earlier records elided" in limited

    def test_render_empty(self):
        assert render_flight_record([]) == "flight record: empty"


class TestProgressSink:
    def test_non_tty_writes_full_lines_to_stream(self):
        stream = io.StringIO()
        sink = ProgressSink(stream=stream, min_interval=0.0)
        sink.handle({"kind": "sweep.start", "total": 4})
        sink.tick({"total": 4, "completed": 1, "rate_per_s": 2.0,
                   "eta_s": 1.5, "in_flight": 2, "retries": 1})
        sink.handle({"kind": "sweep.finish", "completed": 4, "total": 4,
                     "wall_s": 2.0})
        sink.close()
        out = stream.getvalue()
        assert "sweep started: 4 work units" in out
        assert "1/4 (25%)" in out
        assert "2.00/s" in out
        assert "in-flight 2" in out
        assert "retries 1" in out
        assert "sweep finished: 4/4" in out

    def test_throttling_skips_fast_ticks(self):
        stream = io.StringIO()
        clock = FakeClock()
        sink = ProgressSink(stream=stream, min_interval=5.0, monotonic=clock)
        snap = {"total": 2, "completed": 1, "rate_per_s": 1.0, "eta_s": 1.0}
        sink.tick(snap)
        first = stream.getvalue()
        sink.tick(snap)  # same instant: throttled
        assert stream.getvalue() == first
        clock.advance(6.0)
        sink.tick(snap)
        assert stream.getvalue() != first


class TestOpenMetrics:
    def test_counters_gauges_histograms_exposition(self):
        registry = MetricsRegistry()
        registry.counter("smrp.joins").inc(3)
        registry.gauge("exec.jobs").set(4)
        hist = registry.histogram("recovery.latency", (1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 99.0):
            hist.observe(value)
        text = openmetrics_from_snapshot(registry.snapshot())
        assert "# TYPE repro_smrp_joins counter" in text
        assert "repro_smrp_joins_total 3" in text
        assert "repro_exec_jobs 4" in text
        # Buckets are cumulative: 2 under 1.0, 3 under 5.0, 4 total.
        assert 'repro_recovery_latency_bucket{le="1"} 2' in text
        assert 'repro_recovery_latency_bucket{le="5"} 3' in text
        assert 'repro_recovery_latency_bucket{le="+Inf"} 4' in text
        assert "repro_recovery_latency_count 4" in text
        assert text.endswith("# EOF\n")

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.with spaces").inc()
        text = openmetrics_from_snapshot(registry.snapshot())
        assert "repro_weird_name_with_spaces_total 1" in text

    def test_empty_snapshot_is_valid_exposition(self):
        assert openmetrics_from_snapshot({}) == "# EOF\n"

    def test_render_openmetrics_requires_run_report(self):
        with pytest.raises(ConfigurationError, match="not a repro run report"):
            render_openmetrics({"junk": True})

    def test_render_openmetrics_from_report(self):
        obs = Observability()
        obs.counter("demo.widgets").inc(2)
        report = build_run_report(obs)
        text = render_openmetrics(report)
        assert "repro_demo_widgets_total 2" in text

    def test_sink_writes_atomically_and_on_close(self, tmp_path):
        path = tmp_path / "metrics.prom"
        clock = FakeClock()
        sink = OpenMetricsSink(path, min_interval=1.0, monotonic=clock)
        registry = MetricsRegistry()
        registry.counter("demo.things").inc()
        sink.tick({"metrics": registry.snapshot()})
        text = path.read_text()
        assert "repro_demo_things_total 1" in text
        assert not path.with_name(path.name + ".tmp").exists()
        registry.counter("demo.things").inc()
        sink.tick({"metrics": registry.snapshot()})  # throttled, unchanged
        assert "repro_demo_things_total 1" in path.read_text()
        sink.close()  # close always flushes the final state
        assert "repro_demo_things_total 2" in path.read_text()


class TestEmptyRunGuards:
    def test_histogram_mean_guarded_on_zero_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("empty.hist", (1.0,))
        assert hist.mean == 0.0

    def test_render_run_report_with_empty_histogram(self):
        obs = Observability()
        obs.histogram("empty.hist", (1.0,))  # registered, never observed
        text = render_run_report(build_run_report(obs))
        assert "empty.hist: n=0 mean=0.000 min=— max=—" in text

    def test_render_run_report_on_fresh_obs(self):
        # A run that recorded nothing still renders (no division, no None).
        text = render_run_report(build_run_report(Observability()))
        assert "run report" in text
