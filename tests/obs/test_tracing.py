"""Causal restoration tracing: span trees, critical paths, round-trips.

Covers the tentpole invariants end to end: child spans nest inside
their parents, the critical path sums to the episode's restoration
latency, the tracer's loss accounting *sums* across merges, and both
export formats (NDJSON, Chrome trace-event JSON) round-trip losslessly.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, UnrecoverableFailureError
from repro.graph.generators import node_id
from repro.multicast.tree import MulticastTree
from repro.core.recovery import (
    estimate_restoration_latency,
    global_detour_recovery,
    local_detour_recovery,
)
from repro.obs import Observability
from repro.obs.tracing import (
    Episode,
    RestorationTracer,
    TraceAnalyzer,
    TraceSpan,
    chrome_trace_document,
    critical_path,
    episodes_from_chrome,
    read_trace_ndjson,
    validate_episode,
    write_trace_ndjson,
)
from repro.routing.failure_view import FailureSet
from repro.routing.link_state import ConvergenceModel
from repro.sim.failures import FailureSchedule
from repro.sim.protocols import SmrpSimulation


def _episode(outcome: str = "restored") -> Episode:
    return Episode.new(
        "ep-test-000000-local-7", "test", 7, "local", "measure",
        "link 1-2", 0.0, outcome=outcome,
    )


class TestEpisodeStructure:
    def test_new_creates_root_span(self):
        ep = _episode()
        assert ep.root.span_id == 0
        assert ep.root.parent_id == -1
        assert ep.root.phase == "episode"
        assert ep.latency == 0.0

    def test_close_sets_latency(self):
        ep = _episode()
        ep.close(42.5)
        assert ep.end == 42.5
        assert ep.latency == 42.5

    def test_children_sorted_by_interval(self):
        ep = _episode()
        late = ep.add("signal", 7, 10.0, 20.0)
        early = ep.add("detect", 7, 0.0, 10.0)
        ep.close(20.0)
        kids = ep.children(0)
        assert [s.span_id for s in kids] == [early, late]

    def test_from_dict_rejects_empty_spans(self):
        with pytest.raises(ConfigurationError):
            Episode.from_dict({"id": "x", "member": 1, "strategy": "local"})

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(ConfigurationError):
            Episode.from_dict({"id": "x"})

    def test_dict_round_trip(self):
        ep = _episode()
        ep.add("detect", 7, 0.0, 30.0, payload={"detection_delay": 30.0})
        ep.close(30.0)
        assert Episode.from_dict(ep.to_dict()).to_dict() == ep.to_dict()


class TestCriticalPath:
    def test_tiling_children_refine_the_root(self):
        ep = _episode()
        ep.add("detect", 7, 0.0, 30.0)
        ep.add("signal", 7, 30.0, 50.0)
        ep.close(50.0)
        path = critical_path(ep)
        assert [s.phase for s in path] == ["detect", "signal"]
        assert math.fsum(s.duration for s in path) == ep.latency

    def test_refinement_recurses_into_tiling_grandchildren(self):
        ep = _episode()
        ep.add("detect", 7, 0.0, 30.0)
        signal = ep.add("signal", 7, 30.0, 50.0)
        ep.add("signal.hop", 8, 30.0, 40.0, parent=signal)
        ep.add("signal.hop", 9, 40.0, 50.0, parent=signal)
        ep.close(50.0)
        path = critical_path(ep)
        assert [s.phase for s in path] == ["detect", "signal.hop", "signal.hop"]
        assert math.fsum(s.duration for s in path) == ep.latency

    def test_sparse_children_leave_parent_unrefined(self):
        # A DES repair window with message hops that do not cover it:
        # the window itself stays on the path, so the sum is preserved.
        ep = _episode()
        ep.add("detect", 7, 0.0, 30.0)
        repair = ep.add("repair", 7, 30.0, 50.0)
        ep.add("signal.hop", 8, 33.0, 36.0, parent=repair)
        ep.close(50.0)
        path = critical_path(ep)
        assert [s.phase for s in path] == ["detect", "repair"]
        assert math.fsum(s.duration for s in path) == ep.latency

    def test_zero_width_spans_tile(self):
        # The measurement model charges zero sim-time for the search.
        ep = _episode()
        ep.add("detect", 7, 0.0, 30.0)
        ep.add("search", 7, 30.0, 30.0)
        ep.add("signal", 7, 30.0, 45.0)
        ep.close(45.0)
        assert [s.phase for s in critical_path(ep)] == [
            "detect", "search", "signal",
        ]

    def test_gap_before_first_child_blocks_refinement(self):
        ep = _episode()
        ep.add("signal", 7, 5.0, 20.0)
        ep.close(20.0)
        assert [s.phase for s in critical_path(ep)] == ["episode"]


class TestValidateEpisode:
    def test_valid_episode_has_no_problems(self):
        ep = _episode()
        ep.add("detect", 7, 0.0, 30.0)
        ep.add("signal", 7, 30.0, 50.0)
        ep.close(50.0)
        assert validate_episode(ep) == []

    def test_child_escaping_parent_interval(self):
        ep = _episode()
        ep.close(10.0)
        ep.add("signal", 7, 5.0, 25.0)
        problems = validate_episode(ep)
        assert any("escapes parent" in p for p in problems)

    def test_span_ending_before_it_starts(self):
        ep = _episode()
        ep.close(10.0)
        ep.add("detect", 7, 8.0, 2.0)
        problems = validate_episode(ep)
        assert any("ends before it starts" in p for p in problems)

    def test_unknown_parent(self):
        ep = _episode()
        ep.close(10.0)
        ep.spans.append(
            TraceSpan(span_id=1, parent_id=99, phase="detect", node=7,
                      start=0.0, end=1.0)
        )
        problems = validate_episode(ep)
        assert any("unknown parent" in p for p in problems)

    def test_second_root_rejected(self):
        ep = _episode()
        ep.spans.append(
            TraceSpan(span_id=1, parent_id=-1, phase="episode", node=7,
                      start=0.0, end=0.0)
        )
        problems = validate_episode(ep)
        assert any("exactly one root" in p for p in problems)

    def test_duplicate_span_ids(self):
        ep = _episode()
        ep.add("detect", 7, 0.0, 5.0)
        ep.close(5.0)
        ep.spans.append(
            TraceSpan(span_id=1, parent_id=0, phase="detect", node=7,
                      start=0.0, end=5.0)
        )
        problems = validate_episode(ep)
        assert any("duplicate span ids" in p for p in problems)


class TestTracerLifecycle:
    def test_open_close_emits_one_episode(self):
        tracer = RestorationTracer()
        tracer.begin_scenario("k1")
        handle = tracer.open(3, "local", "link 1-3", 100.0)
        handle.child("detect", 3, 100.0, 112.0)
        tracer.close(3, 130.0)
        assert len(tracer.episodes) == 1
        ep = tracer.episodes[0]
        assert ep.episode_id == "ep-k1-000000-local-3"
        assert ep.outcome == "restored"
        assert ep.latency == 30.0
        assert tracer.open_for(3) is None
        assert validate_episode(ep) == []

    def test_open_phase_end_filled_at_close(self):
        tracer = RestorationTracer()
        handle = tracer.open(3, "local", "f", 10.0)
        span_id = handle.open_phase("repair", 3, 12.0)
        assert handle.current_phase() == span_id
        tracer.close(3, 40.0)
        span = tracer.episodes[0].spans[span_id]
        assert span.end == 40.0
        assert handle.current_phase() == 0

    def test_close_trims_spans_past_restoration_time(self):
        # A message hop still in flight when service restores would
        # escape the root interval; finalize drops it (and its subtree).
        tracer = RestorationTracer()
        handle = tracer.open(3, "local", "f", 0.0)
        handle.child("detect", 3, 0.0, 10.0)
        straggler = handle.child("signal", 3, 10.0, 99.0)
        handle.child("signal.hop", 4, 10.0, 99.0, parent=straggler)
        tracer.close(3, 20.0)
        assert tracer.trimmed == 2
        ep = tracer.episodes[0]
        assert [s.phase for s in ep.spans] == ["episode", "detect"]
        assert validate_episode(ep) == []

    def test_reopen_same_member_abandons_stale_episode(self):
        tracer = RestorationTracer()
        tracer.open(3, "local", "first", 0.0)
        tracer.open(3, "local", "second", 50.0)
        tracer.close(3, 60.0)
        assert tracer.abandoned == 1
        assert len(tracer.episodes) == 1
        assert tracer.episodes[0].failure == "second"

    def test_abandon_discards_without_emitting(self):
        tracer = RestorationTracer()
        tracer.open(3, "local", "f", 0.0)
        tracer.abandon(3)
        tracer.abandon(3)  # idempotent
        assert tracer.abandoned == 1
        assert tracer.episodes == []

    def test_finalize_closes_open_episodes_as_incomplete(self):
        tracer = RestorationTracer()
        handle = tracer.open(3, "global", "f", 0.0)
        handle.child("detect", 3, 0.0, 12.0)
        tracer.finalize()
        assert len(tracer.episodes) == 1
        ep = tracer.episodes[0]
        assert ep.outcome == "incomplete"
        assert ep.end == 12.0  # latest observed span end
        assert validate_episode(ep) == []

    def test_max_episodes_drops_count(self):
        tracer = RestorationTracer(max_episodes=2)
        for i in range(5):
            ep = _episode()
            ep.episode_id = f"ep-{i}"
            tracer.emit(ep)
        assert len(tracer.episodes) == 2
        assert tracer.dropped == 3

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            RestorationTracer(max_episodes=0)

    def test_emit_renames_colliding_ids(self):
        # The quick-figures grid runs the same scenario config in more
        # than one figure; ids must stay unique across the batch.
        tracer = RestorationTracer()
        for _ in range(3):
            tracer.emit(_episode())
        ids = [e.episode_id for e in tracer.episodes]
        assert ids == [
            "ep-test-000000-local-7",
            "ep-test-000000-local-7#1",
            "ep-test-000000-local-7#2",
        ]

    def test_ambient_instant_prefers_open_episode_for_node(self):
        tracer = RestorationTracer()
        tracer.bind_clock(lambda: 7.5)
        tracer.open(3, "local", "f", 0.0)
        tracer.open(4, "local", "f", 0.0)
        tracer.ambient_instant("reshape.evaluate", 3)
        tracer.close(3, 10.0)
        tracer.close(4, 10.0)
        by_member = {e.member: e for e in tracer.episodes}
        assert [s.phase for s in by_member[3].spans] == [
            "episode", "reshape.evaluate",
        ]
        assert [s.phase for s in by_member[4].spans] == ["episode"]

    def test_ambient_instant_noop_when_nothing_open(self):
        tracer = RestorationTracer()
        tracer.bind_clock(lambda: 7.5)
        tracer.ambient_instant("reshape.evaluate", 3)
        assert tracer.episodes == []


class TestMergeAccounting:
    """Worker reports fold in with SUMMED loss counters (satellite #2)."""

    def _worker_report(self, key: str, dropped: int) -> dict:
        tracer = RestorationTracer(max_episodes=1)
        tracer.begin_scenario(key)
        for i in range(1 + dropped):
            ep = Episode.new(
                tracer.next_episode_id(i, "local"), key, i, "local",
                "measure", "f", 0.0,
            )
            tracer.emit(ep)
        tracer.trimmed = 2
        tracer.abandoned = 1
        assert tracer.dropped == dropped
        return tracer.report()

    def test_absorb_sums_loss_counters(self):
        parent = RestorationTracer()
        parent.absorb(self._worker_report("w1", dropped=3))
        parent.absorb(self._worker_report("w2", dropped=2))
        assert parent.dropped == 5  # 3 + 2, not last-write-win
        assert parent.trimmed == 4
        assert parent.abandoned == 2
        assert len(parent.episodes) == 2

    def test_absorb_preserves_episode_content(self):
        worker = RestorationTracer()
        worker.begin_scenario("w")
        handle = worker.open(3, "global", "link 1-2", 5.0)
        handle.child("converge", 3, 5.0, 20.0)
        worker.close(3, 25.0)
        parent = RestorationTracer()
        parent.absorb(worker.report())
        assert [e.to_dict() for e in parent.episodes] == [
            e.to_dict() for e in worker.episodes
        ]

    def test_absorb_renames_cross_worker_collisions(self):
        report = self._worker_report("same", dropped=0)
        parent = RestorationTracer()
        parent.absorb(report)
        parent.absorb(report)
        ids = [e.episode_id for e in parent.episodes]
        assert len(set(ids)) == 2
        assert ids[1].endswith("#1")


class TestMeasurementIntegration:
    """Episodes from the closed-form model agree with the figures' numbers."""

    @pytest.fixture
    def fig1_tree(self, fig1):
        tree = MulticastTree(fig1, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("C")])
        tree.graft([node_id("A"), node_id("D")])
        return tree

    @pytest.fixture
    def failure(self):
        return FailureSet.links((node_id("A"), node_id("D")))

    def _traced(self):
        return Observability(enabled=False, tracer=RestorationTracer())

    def test_local_episode_matches_latency_estimate(
        self, fig1, fig1_tree, failure
    ):
        obs = self._traced()
        result = local_detour_recovery(
            fig1, fig1_tree, node_id("D"), failure, obs=obs
        )
        assert len(obs.tracer.episodes) == 1
        ep = obs.tracer.episodes[0]
        assert ep.strategy == "local"
        assert ep.outcome == "restored"
        assert validate_episode(ep) == []
        assert ep.latency == estimate_restoration_latency(
            fig1, fig1_tree, result, failure
        )
        phases = [s.phase for s in critical_path(ep)]
        assert phases[0] == "detect"
        assert "converge" not in phases  # the paper's point
        assert phases.count("signal.hop") == result.recovery_hops

    def test_global_episode_includes_convergence_wait(
        self, fig1, fig1_tree, failure
    ):
        obs = self._traced()
        result = global_detour_recovery(
            fig1, fig1_tree, node_id("D"), failure, obs=obs
        )
        ep = obs.tracer.episodes[0]
        assert validate_episode(ep) == []
        assert ep.latency == estimate_restoration_latency(
            fig1, fig1_tree, result, failure
        )
        phases = [s.phase for s in critical_path(ep)]
        assert phases[0] == "converge"
        # The convergence wait dominates: it is the detection delay plus
        # LSA propagation, always >= the local strategy's detect window.
        converge = next(s for s in ep.spans if s.phase == "converge")
        assert converge.duration >= ConvergenceModel().detection_delay

    def test_already_connected_member_emits_zero_latency_episode(
        self, fig1, fig1_tree, failure
    ):
        obs = self._traced()
        local_detour_recovery(fig1, fig1_tree, node_id("C"), failure, obs=obs)
        ep = obs.tracer.episodes[0]
        assert ep.outcome == "already_connected"
        assert validate_episode(ep) == []

    def test_unrecoverable_member_emits_detect_only_episode(
        self, fig1, fig1_tree
    ):
        obs = self._traced()
        with pytest.raises(UnrecoverableFailureError):
            local_detour_recovery(
                fig1, fig1_tree, node_id("D"),
                FailureSet.nodes(node_id("S")), obs=obs,
            )
        ep = obs.tracer.episodes[0]
        assert ep.outcome == "unrecoverable"
        assert [s.phase for s in ep.spans] == ["episode", "detect"]
        assert validate_episode(ep) == []

    def test_analyzer_excludes_unmeasurable_outcomes(
        self, fig1, fig1_tree, failure
    ):
        obs = self._traced()
        local_detour_recovery(fig1, fig1_tree, node_id("D"), failure, obs=obs)
        with pytest.raises(UnrecoverableFailureError):
            local_detour_recovery(
                fig1, fig1_tree, node_id("D"),
                FailureSet.nodes(node_id("S")), obs=obs,
            )
        analyzer = TraceAnalyzer(obs.tracer.episodes)
        assert analyzer.check() == []
        assert analyzer.outcome_counts() == {"restored": 1, "unrecoverable": 1}
        stats = analyzer.latency_stats()
        assert stats["local"]["count"] == 1  # unrecoverable excluded


class TestDesIntegration:
    """Episodes from the discrete-event simulation match its own records."""

    def _run_fig1_failure(self, fig1):
        obs = Observability(enabled=False, tracer=RestorationTracer())
        obs.tracer.begin_scenario("des-test")
        sim = SmrpSimulation(fig1, node_id("S"), d_thresh=0.0, obs=obs)
        sim.schedule_join(10.0, node_id("C"))
        sim.schedule_join(20.0, node_id("D"))
        FailureSchedule().fail_link_at(100.0, node_id("A"), node_id("D")).arm(
            sim.sim, sim.network
        )
        sim.run(until=300.0)
        obs.tracer.finalize()
        return sim, obs.tracer

    def test_episode_latency_matches_recovery_record(self, fig1):
        sim, tracer = self._run_fig1_failure(fig1)
        restored = [
            r for r in sim.recovery_records if r.restored_at is not None
        ]
        assert restored
        episodes = {
            e.member: e for e in tracer.episodes if e.outcome == "restored"
        }
        for record in restored:
            ep = episodes[record.detector]
            assert ep.origin == "des"
            assert ep.latency == pytest.approx(record.restoration_latency)

    def test_des_episode_spans_nest_and_sum(self, fig1):
        _, tracer = self._run_fig1_failure(fig1)
        assert tracer.episodes
        for ep in tracer.episodes:
            assert validate_episode(ep) == []
            path = critical_path(ep)
            assert math.fsum(s.duration for s in path) == pytest.approx(
                ep.latency
            )

    def test_des_episode_ids_carry_scenario_key(self, fig1):
        _, tracer = self._run_fig1_failure(fig1)
        assert all(
            e.episode_id.startswith("ep-des-test-") for e in tracer.episodes
        )


# ----------------------------------------------------------------------
# Property-based round-trips (satellite #3)
# ----------------------------------------------------------------------
# Dyadic rationals: exact under the +/- arithmetic the Chrome exporter
# uses (ts + dur), so round-trip equality is exact, not approximate.
_times = st.integers(min_value=0, max_value=10**6).map(lambda n: n / 64)
_payloads = st.dictionaries(
    st.sampled_from(["link", "hops", "reason"]),
    st.one_of(st.integers(-100, 100), st.text(max_size=8)),
    max_size=2,
)


@st.composite
def _episodes(draw, index: int = 0):
    n_children = draw(st.integers(min_value=0, max_value=5))
    start, end = sorted(
        draw(st.tuples(_times, _times), label="root interval")
    )
    eid = draw(st.text(st.characters(codec="ascii", min_codepoint=33,
                                     max_codepoint=126), min_size=1,
                       max_size=12))
    episode = Episode.new(
        f"{eid}-{index}",
        draw(st.sampled_from(["", "k1", "k2"])),
        draw(st.integers(0, 50)),
        draw(st.sampled_from(["local", "global"])),
        draw(st.sampled_from(["measure", "repair", "des"])),
        draw(st.text(max_size=10)),
        start,
    )
    episode.close(end)
    for _ in range(n_children):
        a, b = sorted(draw(st.tuples(_times, _times)))
        parent = draw(st.integers(0, len(episode.spans) - 1))
        episode.add(
            draw(st.sampled_from(["detect", "converge", "signal", "repair"])),
            draw(st.integers(0, 50)),
            a,
            b,
            parent=parent,
            payload=draw(_payloads),
        )
    return episode


def _episode_batch():
    return st.lists(st.integers(), min_size=0, max_size=4).flatmap(
        lambda seeds: st.tuples(
            *[_episodes(index=i) for i in range(len(seeds))]
        ).map(list)
    )


class TestRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(batch=_episode_batch())
    def test_ndjson_round_trip(self, batch, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("trace") / "t.ndjson")
        wrote = write_trace_ndjson(
            batch, path, dropped=3, trimmed=1, abandoned=2
        )
        assert wrote == len(batch)
        loaded = read_trace_ndjson(path)
        assert (loaded.dropped, loaded.trimmed, loaded.abandoned) == (3, 1, 2)
        expected = sorted(batch, key=lambda e: e.episode_id)
        assert [e.to_dict() for e in loaded.episodes] == [
            e.to_dict() for e in expected
        ]

    @settings(max_examples=40, deadline=None)
    @given(batch=_episode_batch())
    def test_chrome_round_trip(self, batch):
        document = chrome_trace_document(batch)
        rebuilt = episodes_from_chrome(document)
        expected = sorted(batch, key=lambda e: e.episode_id)
        assert [e.to_dict() for e in rebuilt] == [
            e.to_dict() for e in expected
        ]

    def test_chrome_rejects_non_document(self):
        with pytest.raises(ConfigurationError):
            episodes_from_chrome({"foo": 1})

    def test_chrome_rejects_rootless_episode(self):
        document = {
            "traceEvents": [{
                "ph": "X", "name": "detect", "ts": 0, "dur": 1,
                "pid": 1, "tid": 1,
                "args": {"episode": "e", "span": 1, "parent": 0, "node": 0},
            }]
        }
        with pytest.raises(ConfigurationError):
            episodes_from_chrome(document)

    def test_ndjson_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            read_trace_ndjson(str(path))

    def test_ndjson_tolerates_missing_header(self, tmp_path):
        ep = _episode()
        ep.close(5.0)
        import json

        path = tmp_path / "raw.ndjson"
        path.write_text(json.dumps(ep.to_dict()) + "\n")
        loaded = read_trace_ndjson(str(path))
        assert len(loaded.episodes) == 1
        assert loaded.dropped == 0
