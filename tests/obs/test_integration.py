"""End-to-end: obs counters from a real simulation match the trace.

One small message-level SMRP run is driven with both a :class:`Trace`
and an :class:`Observability` attached; the per-message-type counters
the network maintains must agree exactly with counts derived from the
trace, and the engine counters must agree with the simulator's own
bookkeeping.  This pins the instrumentation to ground truth rather than
to itself.
"""

import pytest

from repro.graph.generators import node_id
from repro.obs import Observability
from repro.sim.protocols import SmrpSimulation
from repro.sim.trace import Trace


@pytest.fixture
def observed_run(fig4):
    trace = Trace()
    obs = Observability()
    sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3, trace=trace, obs=obs)
    for i, m in enumerate(("E", "G", "F")):
        sim.schedule_join(10.0 + 20.0 * i, node_id(m))
    sim.run(until=200.0)
    return sim, trace, obs


def test_message_type_counters_match_trace(observed_run):
    sim, trace, obs = observed_run
    sent = obs.metrics.counters("sim.msg.sent.")
    assert sent, "instrumented run recorded no sends"
    kinds = {name.rsplit(".", 1)[-1] for name in sent}
    # Every kind the network's own stats saw is covered, and each
    # counter equals the number of "send" trace records of that kind.
    assert kinds == set(sim.network.stats.by_kind)
    for kind in kinds:
        assert sent[f"sim.msg.sent.{kind}"] == trace.count("send", event=kind)
        assert sent[f"sim.msg.sent.{kind}"] == sim.network.stats.by_kind[kind]


def test_bytes_counters_scale_with_send_counts(observed_run):
    _, _, obs = observed_run
    sent = obs.metrics.counters("sim.msg.sent.")
    for name, count in sent.items():
        kind = name.rsplit(".", 1)[-1]
        byte_count = obs.metrics.counters(f"sim.msg.bytes.{kind}")[
            f"sim.msg.bytes.{kind}"
        ]
        # Every message carries at least the 20-byte header.
        assert byte_count >= 20 * count


def test_engine_counters_match_simulator(observed_run):
    sim, _, obs = observed_run
    counters = obs.metrics.counters("sim.engine.")
    assert counters["sim.engine.events_fired"] == sim.sim.events_processed
    assert counters["sim.engine.events_scheduled"] >= counters[
        "sim.engine.events_fired"
    ]
    hwm = obs.metrics.gauge("sim.engine.queue_depth").high_water
    assert hwm >= 1


def test_join_spans_recorded(observed_run):
    _, _, obs = observed_run
    totals = obs.spans.totals()
    assert totals["sim.join.select_path"][0] == 3  # one per member join


def test_run_without_obs_still_works(fig4):
    sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3)
    sim.schedule_join(10.0, node_id("E"))
    sim.run(until=60.0)
    assert node_id("E") in sim.extract_tree().members
