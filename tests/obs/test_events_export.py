"""EventLog JSONL round-trips and run-report build/write/load/render."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    EventLog,
    Observability,
    build_run_report,
    load_run_report,
    read_jsonl,
    render_run_report,
    write_run_report,
)
from repro.obs.events import load_jsonl


class TestEventLog:
    def test_emit_and_iterate(self):
        log = EventLog()
        log.emit("join", node=3, at=1.5)
        log.emit("leave", node=3)
        assert len(log) == 2
        assert list(log) == [
            {"kind": "join", "node": 3, "at": 1.5},
            {"kind": "leave", "node": 3},
        ]

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", y=[1, 2], z="s")
        assert read_jsonl(log.to_jsonl()) == list(log)
        path = str(tmp_path / "events.jsonl")
        log.write_jsonl(path)
        assert load_jsonl(path) == list(log)

    def test_empty_log_round_trip(self, tmp_path):
        log = EventLog()
        assert log.to_jsonl() == ""
        path = str(tmp_path / "empty.jsonl")
        log.write_jsonl(path)
        assert load_jsonl(path) == []

    def test_bounded_drops_oldest(self):
        log = EventLog(max_records=3)
        for i in range(5):
            log.emit("e", i=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [r["i"] for r in log] == [2, 3, 4]

    def test_disabled_records_nothing(self):
        log = EventLog(enabled=False)
        log.emit("e", i=1)
        assert len(log) == 0
        assert log.dropped == 0

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ConfigurationError):
            EventLog(max_records=0)

    def test_unbounded_when_cap_is_none(self):
        log = EventLog(max_records=None)
        for i in range(10):
            log.emit("e", i=i)
        assert len(log) == 10
        assert log.dropped == 0


class TestRunReport:
    def _populated_obs(self):
        obs = Observability()
        obs.counter("smrp.joins").inc(4)
        obs.gauge("sim.engine.queue_depth").set(7)
        obs.histogram("recovery.local.hops", bounds=(1, 2, 4)).observe(3)
        with obs.span("smrp.build"):
            with obs.span("smrp.join"):
                pass
        obs.emit("scenario_result", config="demo")
        return obs

    def test_build_contains_all_sections(self):
        report = build_run_report(self._populated_obs(), meta={"title": "t"})
        assert report["version"] == 1
        assert report["meta"] == {"title": "t"}
        assert report["metrics"]["counters"]["smrp.joins"] == 4
        assert report["spans"]["children"][0]["name"] == "smrp.build"
        assert report["events"] == {"recorded": 1, "dropped": 0}

    def test_write_load_round_trip(self, tmp_path):
        obs = self._populated_obs()
        report = obs.run_report(meta={"title": "round-trip", "seed": 3})
        path = str(tmp_path / "run.json")
        write_run_report(report, path)
        assert load_run_report(path) == report

    def test_load_rejects_non_report_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ConfigurationError):
            load_run_report(str(path))

    def test_render_mentions_every_section(self):
        obs = self._populated_obs()
        text = render_run_report(obs.run_report(meta={"title": "demo run"}))
        assert "== demo run ==" in text
        assert "smrp.joins" in text and "4" in text
        assert "high-water 7" in text
        assert "recovery.local.hops: n=1" in text
        assert "(2, 4]" in text  # the bucket holding the observation
        assert "smrp.build: 1 calls" in text
        assert "smrp.join" in text
        assert "events: 1 recorded, 0 dropped" in text

    def test_render_histogram_overflow_bucket(self):
        obs = Observability()
        obs.histogram("h", bounds=(1, 2)).observe(9)
        text = render_run_report(obs.run_report())
        assert "> 2" in text

    def test_disabled_obs_produces_empty_report(self):
        obs = Observability(enabled=False)
        obs.counter("x").inc()
        with obs.span("y"):
            obs.emit("z")
        report = obs.run_report()
        assert report["metrics"]["counters"] == {}
        assert report["spans"]["children"] == []
        assert report["events"] == {"recorded": 0, "dropped": 0}
