"""Lint: every emitted observability name is in the registry, and back.

The scan is textual (regex over the source tree) on purpose: emission
sites are stringly-typed f-strings and literals, so a textual scan sees
exactly what a grep-driven dashboard or analysis script would see.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.obs import names

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
TESTS = Path(__file__).resolve().parents[1]

#: ``obs.counter("...")`` / bare ``gauge("...")`` (live.py binds the
#: method to a local) / f-string dynamic names.
_METRIC = re.compile(
    r'\b(?:counter|gauge|hdr_histogram|histogram)\(\s*(f?)"([^"]*)"'
)
_SPAN = re.compile(r'\.span\(\s*(f?)"([^"]*)"')
#: Episode span-tree emission sites (repro.obs.tracing handles).
_PHASE = re.compile(
    r'\b(?:child|open_phase|instant|ambient_instant|add)\(\s*(f?)"([^"]*)"'
)


def _source_files(root: Path) -> list[Path]:
    return sorted(root.rglob("*.py"))


def _emitted(pattern: re.Pattern) -> set[tuple[str, str, str]]:
    found = set()
    for path in _source_files(SRC):
        text = path.read_text(encoding="utf-8")
        for is_f, name in pattern.findall(text):
            found.add((str(path.relative_to(SRC)), is_f, name))
    return found


def _check_registered(emitted: set[tuple[str, str, str]]) -> list[str]:
    problems = []
    for path, is_f, name in sorted(emitted):
        if is_f:
            literal = name.split("{", 1)[0]
            if not any(
                literal.startswith(p) or p.startswith(literal)
                for p in names.DYNAMIC_PREFIXES
            ):
                problems.append(
                    f"{path}: dynamic name f\"{name}\" matches no "
                    f"DYNAMIC_PREFIXES entry"
                )
        elif not names.is_registered(name):
            problems.append(f"{path}: emitted name {name!r} not registered")
    return problems


class TestEmittedNamesAreRegistered:
    def test_metric_literals(self):
        assert _check_registered(_emitted(_METRIC)) == []

    def test_span_literals(self):
        assert _check_registered(_emitted(_SPAN)) == []

    def test_trace_phase_literals(self):
        emitted = {
            (path, is_f, name)
            for path, is_f, name in _emitted(_PHASE)
            # The tracing module's own handles take the phase as a
            # parameter; literal sites elsewhere are the emissions.
            if not path.startswith("obs/")
        }
        problems = [
            f"{path}: trace phase {name!r} not in TRACE_PHASES"
            for path, is_f, name in sorted(emitted)
            if not is_f and name not in names.TRACE_PHASES
        ]
        assert problems == []


class TestRegisteredNamesAreEmitted:
    """The reverse direction: no orphaned registry entries.

    A registered name must appear as a quoted string somewhere in the
    source or test tree (emission site, constant definition, or test) —
    a rename that forgets the registry shows up here.
    """

    @pytest.fixture(scope="class")
    def quoted_strings(self) -> set[str]:
        quoted = set()
        for root in (SRC, TESTS):
            for path in _source_files(root):
                if path.name == "names.py" or path.name == "test_names.py":
                    continue
                text = path.read_text("utf-8")
                for double, single in re.findall(
                    r'"([^"\n]*)"|\'([^\'\n]*)\'', text
                ):
                    quoted.add(double or single)
        return quoted

    def test_metric_names(self, quoted_strings):
        orphans = sorted(names.METRIC_NAMES - quoted_strings)
        assert orphans == []

    def test_span_names(self, quoted_strings):
        orphans = sorted(names.SPAN_NAMES - quoted_strings)
        assert orphans == []

    def test_trace_phases(self, quoted_strings):
        orphans = sorted(names.TRACE_PHASES - quoted_strings)
        assert orphans == []


class TestRegistryShape:
    def test_no_overlap_between_kinds(self):
        assert not names.METRIC_NAMES & names.SPAN_NAMES
        assert not names.METRIC_NAMES & names.TRACE_PHASES

    def test_is_registered(self):
        assert names.is_registered("exec.scenarios")
        assert names.is_registered("sim.msg.sent.Join_Req")
        assert names.is_registered("sweep.point.0.3")
        assert not names.is_registered("sim.msg.sent.")
        assert not names.is_registered("no.such.name")
