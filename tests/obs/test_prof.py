"""Tests for the self-time profiler (:mod:`repro.obs.prof`)."""

from __future__ import annotations

import time

from repro.obs import (
    Observability,
    collapse_stacks,
    flat_profile,
    render_collapsed,
    render_profile,
    self_time_total,
)

#: A hand-built span tree: root wall 1.0s, of which outer takes 0.9s
#: (0.3s exclusive), its two inner calls 0.6s, and a sibling 0.1s.
TREE = {
    "name": "<root>",
    "calls": 0,
    "total_s": 0.0,
    "children": [
        {
            "name": "outer",
            "calls": 1,
            "total_s": 0.9,
            "children": [
                {"name": "inner", "calls": 2, "total_s": 0.6, "children": []},
            ],
        },
        {"name": "sidecar", "calls": 1, "total_s": 0.1, "children": []},
    ],
}


class TestFlatProfile:
    def test_exclusive_is_total_minus_children(self):
        rows = {row["name"]: row for row in flat_profile(TREE)}
        assert rows["outer"]["self_s"] == rows["outer"]["total_s"] - 0.6
        assert rows["inner"]["self_s"] == 0.6
        assert rows["sidecar"]["self_s"] == 0.1

    def test_sorted_by_self_time_desc(self):
        names = [row["name"] for row in flat_profile(TREE)]
        assert names == ["inner", "outer", "sidecar"]

    def test_same_name_at_depths_sums_into_one_row(self):
        tree = {
            "name": "<root>",
            "total_s": 0.0,
            "children": [
                {
                    "name": "a",
                    "calls": 1,
                    "total_s": 1.0,
                    "children": [
                        {"name": "a", "calls": 1, "total_s": 0.4,
                         "children": []},
                    ],
                },
            ],
        }
        rows = flat_profile(tree)
        assert len(rows) == 1
        assert rows[0]["calls"] == 2
        assert rows[0]["total_s"] == 1.4
        # 0.6 exclusive at the top + 0.4 at the bottom
        assert abs(rows[0]["self_s"] - 1.0) < 1e-12

    def test_empty_tree(self):
        assert flat_profile({}) == []
        assert flat_profile({"children": []}) == []


class TestSelfTimeTotal:
    def test_telescopes_to_top_level_totals(self):
        assert abs(self_time_total(TREE) - 1.0) < 1e-12

    def test_matches_flat_profile_sum(self):
        rows = flat_profile(TREE)
        assert abs(
            self_time_total(TREE) - sum(row["self_s"] for row in rows)
        ) < 1e-12


class TestCollapseStacks:
    def test_paths_and_weights(self):
        lines = collapse_stacks(TREE)
        assert lines == [
            "outer 300000",
            "outer;inner 600000",
            "sidecar 100000",
        ]

    def test_zero_weight_frames_dropped(self):
        tree = {
            "name": "<root>",
            "total_s": 0.0,
            "children": [
                {
                    "name": "shell",
                    "calls": 1,
                    "total_s": 0.5,
                    "children": [
                        {"name": "work", "calls": 1, "total_s": 0.5,
                         "children": []},
                    ],
                },
            ],
        }
        assert collapse_stacks(tree) == ["shell;work 500000"]

    def test_weights_sum_to_self_time_total(self):
        total = sum(int(line.rsplit(" ", 1)[1]) for line in collapse_stacks(TREE))
        assert abs(total / 1_000_000 - self_time_total(TREE)) < 1e-6

    def test_render_collapsed_trailing_newline(self):
        assert render_collapsed(TREE).endswith("\n")
        assert render_collapsed({}) == ""


class TestRenderProfile:
    def test_includes_wall_coverage(self):
        text = render_profile(TREE, wall_s=1.25)
        assert "wall 1.250s" in text
        assert "spans cover 1.000s" in text
        assert "80.0%" in text

    def test_without_wall(self):
        text = render_profile(TREE)
        assert "spans cover 1.000s" in text
        assert "wall" not in text

    def test_empty(self):
        assert "(no spans recorded)" in render_profile({})

    def test_top_truncation(self):
        tree = {
            "name": "<root>",
            "total_s": 0.0,
            "children": [
                {"name": f"s{i:02}", "calls": 1, "total_s": 0.01,
                 "children": []}
                for i in range(25)
            ],
        }
        text = render_profile(tree, top=20)
        assert "... 5 more spans" in text


class TestLiveTreeCoverage:
    def test_self_time_matches_wall_on_serial_run(self):
        """A run whose spans all nest under one root attributes (nearly)
        the whole measured wall clock — the `--profile` contract."""
        obs = Observability(enabled=True)
        start = time.perf_counter()
        with obs.span("prof.run"):
            with obs.span("outer"):
                with obs.span("inner"):
                    time.sleep(0.02)
                time.sleep(0.01)
        wall = time.perf_counter() - start
        spans = obs.spans.report()
        covered = self_time_total(spans)
        assert covered <= wall + 1e-9
        assert covered >= wall * 0.9
        rows = {row["name"]: row for row in flat_profile(spans)}
        assert rows["inner"]["self_s"] >= 0.015
