"""Run-report diffing (``repro obs diff``)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Observability,
    build_run_report,
    diff_run_reports,
    max_span_ratio,
    render_report_diff,
    span_totals,
)
from repro.obs.diff import SPAN_NOISE_FLOOR_S


def report_with(counters=(), span_seconds=()):
    """A minimal run report with given counters and flat span totals."""
    return {
        "version": 1,
        "meta": {},
        "metrics": {"counters": dict(counters), "gauges": {}, "histograms": {}},
        "spans": {
            "name": "<root>",
            "calls": 0,
            "total_s": 0.0,
            "self_s": 0.0,
            "children": [
                {"name": name, "calls": 1, "total_s": seconds,
                 "self_s": seconds, "children": []}
                for name, seconds in span_seconds
            ],
        },
        "events": {"recorded": 0, "dropped": 0},
    }


class TestSpanTotals:
    def test_sums_name_across_depths(self):
        tree = {
            "name": "<root>",
            "children": [
                {"name": "a", "calls": 1, "total_s": 1.0, "children": [
                    {"name": "a", "calls": 2, "total_s": 0.5, "children": []},
                ]},
            ],
        }
        totals = span_totals(tree)
        assert totals["a"] == (3, 1.5)

    def test_empty_tree(self):
        assert span_totals({}) == {}


class TestDiffRunReports:
    def test_only_changed_counters_reported(self):
        a = report_with(counters={"same": 5, "grew": 1})
        b = report_with(counters={"same": 5, "grew": 3, "new": 2})
        diff = diff_run_reports(a, b)
        assert "same" not in diff["counters"]
        assert diff["counters"]["grew"] == {"a": 1, "b": 3, "delta": 2}
        assert diff["counters"]["new"] == {"a": 0, "b": 2, "delta": 2}

    def test_span_ratio_b_over_a(self):
        a = report_with(span_seconds=[("work", 1.0)])
        b = report_with(span_seconds=[("work", 2.5)])
        diff = diff_run_reports(a, b)
        assert diff["spans"]["work"]["ratio"] == pytest.approx(2.5)
        assert max_span_ratio(diff) == pytest.approx(2.5)

    def test_noise_floor_masks_tiny_spans(self):
        tiny = SPAN_NOISE_FLOOR_S / 10
        a = report_with(span_seconds=[("blip", tiny)])
        b = report_with(span_seconds=[("blip", tiny * 5)])
        diff = diff_run_reports(a, b)
        assert diff["spans"]["blip"]["ratio"] is None
        assert max_span_ratio(diff) == 0.0

    def test_appeared_and_vanished_spans(self):
        a = report_with(span_seconds=[("gone", 1.0)])
        b = report_with(span_seconds=[("born", 1.0)])
        diff = diff_run_reports(a, b)
        assert math.isinf(diff["spans"]["born"]["ratio"])
        assert diff["spans"]["gone"]["ratio"] == 0.0

    def test_rejects_non_reports(self):
        good = report_with()
        with pytest.raises(ConfigurationError, match="not a repro run report"):
            diff_run_reports(good, {"junk": 1})
        with pytest.raises(ConfigurationError, match="not a repro run report"):
            diff_run_reports([], good)

    def test_real_reports_self_diff_is_clean(self):
        obs = Observability()
        with obs.span("demo.work"):
            obs.counter("demo.widgets").inc(3)
        report = build_run_report(obs)
        diff = diff_run_reports(report, report)
        assert diff["counters"] == {}
        ratio = diff["spans"].get("demo.work", {}).get("ratio")
        assert ratio is None or ratio == pytest.approx(1.0)


class TestRenderReportDiff:
    def test_identical_reports(self):
        a = report_with(counters={"x": 1})
        text = render_report_diff(diff_run_reports(a, a))
        assert "counters: identical" in text

    def test_changed_counters_and_threshold_flag(self):
        a = report_with(counters={"x": 1}, span_seconds=[("slow", 1.0)])
        b = report_with(counters={"x": 4}, span_seconds=[("slow", 3.0)])
        diff = diff_run_reports(a, b)
        text = render_report_diff(diff, threshold=2.0)
        assert "x" in text and "1 -> 4 (+3)" in text
        assert "3.00x" in text
        assert "over --fail-over 2" in text
        relaxed = render_report_diff(diff, threshold=5.0)
        assert "over --fail-over" not in relaxed
