"""MetricsRegistry semantics: instruments, idempotence, disabled no-ops."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.registry import _NULL_COUNTER, _NULL_GAUGE, _NULL_HISTOGRAM


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = MetricsRegistry().counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_counters_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("sim.msg.sent.JoinReq").inc(3)
        reg.counter("sim.msg.sent.JoinAck").inc(2)
        reg.counter("smrp.joins").inc()
        assert reg.counters("sim.msg.sent.") == {
            "sim.msg.sent.JoinAck": 2,
            "sim.msg.sent.JoinReq": 3,
        }
        assert len(reg.counters()) == 3


class TestGauge:
    def test_set_tracks_high_water(self):
        g = MetricsRegistry().gauge("queue")
        g.set(3)
        g.set(10)
        g.set(4)
        assert g.value == 4
        assert g.high_water == 10


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("hops", bounds=(1, 2, 4))
        for v in [1, 1, 2, 3, 4, 5, 100]:
            h.observe(v)
        # counts: <=1, (1,2], (2,4], overflow
        assert h.counts == [2, 1, 2, 2]
        assert h.count == 7
        assert h.min == 1
        assert h.max == 100
        assert h.mean == pytest.approx(116 / 7)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=())
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(3, 1, 2))

    def test_reregistration_with_different_bounds_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1, 2))
        assert reg.histogram("h", bounds=(1, 2)) is reg.histogram("h", bounds=(1, 2))
        with pytest.raises(ConfigurationError):
            reg.histogram("h", bounds=(1, 2, 3))

    def test_default_buckets(self):
        h = MetricsRegistry().histogram("h")
        assert h.bounds == tuple(float(b) for b in DEFAULT_BUCKETS)


class TestNameCollisions:
    def test_cross_type_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")
        with pytest.raises(ConfigurationError):
            reg.histogram("x")
        reg.gauge("y")
        with pytest.raises(ConfigurationError):
            reg.counter("y")


class TestDisabled:
    def test_disabled_registry_hands_out_shared_noops(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is _NULL_COUNTER
        assert reg.gauge("b") is _NULL_GAUGE
        assert reg.histogram("c") is _NULL_HISTOGRAM
        assert reg.hdr_histogram("d") is _NULL_HISTOGRAM

    def test_noop_instruments_record_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc(10)
        reg.gauge("b").set(5)
        reg.histogram("c").observe(1)
        reg.hdr_histogram("d").observe(2)
        snap = reg.snapshot()
        assert snap == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "hdr_histograms": {},
        }


class TestSnapshot:
    def test_snapshot_is_json_shaped(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=(1, 2)).observe(2)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"]["g"] == {"value": 1.5, "high_water": 1.5}
        assert snap["histograms"]["h"]["counts"] == [0, 1, 0]
        assert snap["histograms"]["h"]["sum"] == 2.0
        json.dumps(snap)  # must be serializable as-is
