"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_figure_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "11"])


class TestInfo:
    def test_lists_components(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro.core" in out
        assert "DSN 2005" in out


class TestScenario:
    def test_runs_small_scenario(self, capsys):
        code = main([
            "scenario", "--n", "30", "--group-size", "6",
            "--alpha", "0.6", "--topology-seed", "2", "--member-seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RD SPF" in out and "RD SMRP" in out
        assert "Cost_relative" in out

    def test_query_mode_flag(self, capsys):
        code = main([
            "scenario", "--n", "30", "--group-size", "5",
            "--alpha", "0.6", "--knowledge", "query", "--no-reshape",
        ])
        assert code == 0
        assert "scenario:" in capsys.readouterr().out


class TestSimulate:
    def test_join_only(self, capsys):
        code = main(["simulate", "--n", "20", "--members", "3", "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "join latency" in out
        assert "JoinReq" in out

    def test_with_failure(self, capsys):
        code = main([
            "simulate", "--n", "20", "--members", "3", "--seed", "4",
            "--fail-worst",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "injected failure" in out


class TestFigures:
    def test_single_quick_figure(self, capsys):
        code = main(["figures", "--quick", "--figure", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out


class TestExecutorFlags:
    @pytest.mark.parametrize("command", ["figures", "scenario", "simulate"])
    def test_jobs_below_one_rejected(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_serial_executor_with_many_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "--executor", "serial", "--jobs", "4"])
        assert excinfo.value.code == 2
        assert "requires --executor process" in capsys.readouterr().err

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--executor", "threads"])

    def test_scenario_through_process_executor(self, capsys):
        code = main([
            "scenario", "--n", "30", "--group-size", "6", "--alpha", "0.6",
            "--executor", "process", "--jobs", "2",
        ])
        assert code == 0
        assert "Cost_relative" in capsys.readouterr().out

    def test_parallel_figure_matches_serial(self, capsys):
        argv = ["figures", "--quick", "--figure", "8"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_simulate_notes_single_work_unit(self, capsys):
        code = main([
            "simulate", "--n", "20", "--members", "3", "--seed", "4",
            "--jobs", "2",
        ])
        assert code == 0
        assert "single work unit" in capsys.readouterr().out

    def test_info_documents_parallel_flags(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "repro.api" in out


class TestObs:
    def test_report_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "report"])

    def test_scenario_obs_out_then_report(self, capsys, tmp_path):
        path = str(tmp_path / "run.json")
        code = main([
            "scenario", "--n", "30", "--group-size", "6",
            "--alpha", "0.6", "--topology-seed", "2", "--member-seed", "3",
            "--obs-out", path,
        ])
        assert code == 0
        assert path in capsys.readouterr().out

        assert main(["obs", "report", path]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out
        assert "command: scenario" in out
        assert "smrp.joins" in out
        assert "scenario.build.smrp" in out

    def test_simulate_obs_out_then_report(self, capsys, tmp_path):
        path = str(tmp_path / "sim.json")
        code = main([
            "simulate", "--n", "20", "--members", "3", "--seed", "4",
            "--obs-out", path,
        ])
        assert code == 0
        capsys.readouterr()

        assert main(["obs", "report", path]) == 0
        out = capsys.readouterr().out
        assert "sim.engine.events_fired" in out
        assert "sim.msg.sent.JoinReq" in out
        assert "sim.engine.queue_depth" in out

    def test_report_rejects_non_report_json(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        assert main(["obs", "report", str(path)]) == 1
        assert "not a repro run report" in capsys.readouterr().err

    def test_report_missing_file(self, capsys):
        assert main(["obs", "report", "/nonexistent/run.json"]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_obs_out_rejects_missing_directory(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "scenario", "--n", "30", "--group-size", "6",
                "--obs-out", "/nonexistent-dir/run.json",
            ])
        assert "--obs-out directory does not exist" in capsys.readouterr().err


class TestTelemetryFlags:
    SCENARIO = [
        "scenario", "--n", "30", "--group-size", "6",
        "--alpha", "0.6", "--topology-seed", "2", "--member-seed", "3",
    ]

    def test_scenario_with_all_sinks_is_byte_identical(self, capsys, tmp_path):
        assert main(self.SCENARIO) == 0
        plain = capsys.readouterr().out
        flight = str(tmp_path / "flight.ndjson")
        prom = str(tmp_path / "metrics.prom")
        code = main(self.SCENARIO + [
            "--executor", "resilient", "--progress",
            "--telemetry-out", flight, "--openmetrics-out", prom,
        ])
        assert code == 0
        captured = capsys.readouterr()
        # The observe-only invariant: stdout is byte-identical; progress
        # went to stderr, records and metrics to side files.
        assert captured.out == plain
        assert "sweep finished" in captured.err
        import json

        records = [
            json.loads(line)
            for line in open(flight, encoding="utf-8")
        ]
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "sweep.start" and kinds[-1] == "sweep.finish"
        assert "scenario.finish" in kinds
        assert "# EOF" in open(prom, encoding="utf-8").read()

    def test_telemetry_out_rejects_missing_directory(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.SCENARIO + [
                "--telemetry-out", "/nonexistent-dir/flight.ndjson",
            ])
        assert excinfo.value.code == 2
        assert (
            "--telemetry-out directory does not exist"
            in capsys.readouterr().err
        )

    def test_simulate_notes_telemetry_scope(self, capsys, tmp_path):
        code = main([
            "simulate", "--n", "20", "--members", "3", "--seed", "4",
            "--progress",
        ])
        assert code == 0
        assert "telemetry covers scenario sweeps" in capsys.readouterr().out


class TestObsTail:
    def _record_flight(self, tmp_path):
        path = str(tmp_path / "flight.ndjson")
        code = main([
            "scenario", "--n", "30", "--group-size", "6",
            "--telemetry-out", path,
        ])
        assert code == 0
        return path

    def test_tail_renders_timeline(self, capsys, tmp_path):
        path = self._record_flight(tmp_path)
        capsys.readouterr()
        assert main(["obs", "tail", path]) == 0
        out = capsys.readouterr().out
        assert "flight record:" in out
        assert "sweep started" in out
        assert "record kinds:" in out

    def test_tail_last_elides(self, capsys, tmp_path):
        path = self._record_flight(tmp_path)
        capsys.readouterr()
        assert main(["obs", "tail", path, "--last", "1"]) == 0
        out = capsys.readouterr().out
        assert "earlier records elided" in out

    def test_tail_missing_file(self, capsys):
        assert main(["obs", "tail", "/nonexistent/flight.ndjson"]) == 1
        assert "no such file" in capsys.readouterr().err


class TestObsExport:
    def _capture_report(self, tmp_path):
        path = str(tmp_path / "run.json")
        assert main([
            "scenario", "--n", "30", "--group-size", "6", "--obs-out", path,
        ]) == 0
        return path

    def test_export_openmetrics_to_stdout(self, capsys, tmp_path):
        path = self._capture_report(tmp_path)
        capsys.readouterr()
        assert main(["obs", "export", path, "--format", "openmetrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_smrp_joins counter" in out
        assert out.endswith("# EOF\n")

    def test_export_to_file(self, capsys, tmp_path):
        path = self._capture_report(tmp_path)
        out_path = str(tmp_path / "metrics.prom")
        capsys.readouterr()
        assert main(["obs", "export", path, "--out", out_path]) == 0
        text = open(out_path, encoding="utf-8").read()
        assert text.endswith("# EOF\n")
        assert out_path in capsys.readouterr().out

    def test_export_rejects_non_report(self, capsys, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("{}")
        assert main(["obs", "export", str(junk)]) == 1
        assert "not a repro run report" in capsys.readouterr().err


class TestObsDiff:
    def _capture(self, tmp_path, name, seed):
        path = str(tmp_path / name)
        assert main([
            "scenario", "--n", "30", "--group-size", "6",
            "--topology-seed", str(seed), "--obs-out", path,
        ]) == 0
        return path

    def test_self_diff_identical_counters(self, capsys, tmp_path):
        path = self._capture(tmp_path, "a.json", 0)
        capsys.readouterr()
        assert main(["obs", "diff", path, path]) == 0
        out = capsys.readouterr().out
        assert "counters: identical" in out

    def test_different_runs_show_counter_deltas(self, capsys, tmp_path):
        a = self._capture(tmp_path, "a.json", 0)
        b = self._capture(tmp_path, "b.json", 5)
        capsys.readouterr()
        assert main(["obs", "diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "counters changed" in out
        assert "span-time ratios" in out

    def test_fail_over_trips_nonzero_exit(self, capsys, tmp_path):
        import json

        a = self._capture(tmp_path, "a.json", 0)
        report = json.load(open(a, encoding="utf-8"))
        # Inflate every span tenfold in the candidate.
        def inflate(node):
            node["total_s"] = node.get("total_s", 0.0) * 10
            for child in node.get("children", []):
                inflate(child)
        inflate(report["spans"])
        b = str(tmp_path / "b.json")
        json.dump(report, open(b, "w", encoding="utf-8"))
        capsys.readouterr()
        assert main(["obs", "diff", a, b, "--fail-over", "2.0"]) == 1
        captured = capsys.readouterr()
        assert "over --fail-over 2" in captured.out
        assert "exceeds" in captured.err

    def test_diff_rejects_non_report(self, capsys, tmp_path):
        a = self._capture(tmp_path, "a.json", 0)
        junk = tmp_path / "junk.json"
        junk.write_text("{}")
        capsys.readouterr()
        assert main(["obs", "diff", a, str(junk)]) == 1
        assert "not a repro run report" in capsys.readouterr().err


class TestTrace:
    # topology-seed 1: all members restore under the worst-case failure,
    # so the analysis includes the latency and phase-breakdown sections.
    SCENARIO = [
        "scenario", "--n", "30", "--group-size", "6",
        "--alpha", "0.6", "--topology-seed", "1", "--member-seed", "3",
    ]

    def _record_trace(self, capsys, tmp_path):
        path = str(tmp_path / "trace.ndjson")
        assert main(self.SCENARIO + ["--trace-out", path]) == 0
        capsys.readouterr()
        return path

    def test_trace_out_is_observe_only(self, capsys, tmp_path):
        assert main(self.SCENARIO) == 0
        plain = capsys.readouterr().out
        path = str(tmp_path / "trace.ndjson")
        assert main(self.SCENARIO + ["--trace-out", path]) == 0
        captured = capsys.readouterr()
        # Stdout byte-identical; the confirmation goes to stderr.
        assert captured.out == plain
        assert path in captured.err

    def test_trace_out_writes_loadable_ndjson(self, capsys, tmp_path):
        import json

        path = self._record_trace(capsys, tmp_path)
        lines = [
            json.loads(line) for line in open(path, encoding="utf-8")
        ]
        assert lines[0]["kind"] == "trace-header"
        assert lines[0]["clock"] == "sim"
        assert all(line["kind"] == "episode" for line in lines[1:])
        assert len(lines) == lines[0]["episodes"] + 1

    def test_trace_out_rejects_missing_directory(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.SCENARIO + [
                "--trace-out", "/nonexistent-dir/trace.ndjson",
            ])
        assert excinfo.value.code == 2
        assert (
            "--trace-out directory does not exist" in capsys.readouterr().err
        )

    def test_analyze_renders_and_checks(self, capsys, tmp_path):
        path = self._record_trace(capsys, tmp_path)
        assert main(["trace", "analyze", path, "--check"]) == 0
        captured = capsys.readouterr()
        assert "== restoration trace analysis ==" in captured.out
        assert "critical-path phase breakdown:" in captured.out
        assert "trace check passed" in captured.err

    def test_analyze_missing_file(self, capsys):
        assert main(["trace", "analyze", "/nonexistent/trace.ndjson"]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_analyze_rejects_garbage(self, capsys, tmp_path):
        bad = tmp_path / "bad.ndjson"
        bad.write_text("not json\n")
        assert main(["trace", "analyze", str(bad)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_export_chrome_round_trips(self, capsys, tmp_path):
        import json

        from repro.obs import episodes_from_chrome, read_trace_ndjson

        path = self._record_trace(capsys, tmp_path)
        out = str(tmp_path / "trace.json")
        assert main(["trace", "export", path, "--out", out]) == 0
        assert "ui.perfetto.dev" in capsys.readouterr().out
        document = json.load(open(out, encoding="utf-8"))
        assert document["otherData"]["format"] == "repro-restoration-trace"
        rebuilt = episodes_from_chrome(document)
        original = read_trace_ndjson(path).episodes
        assert [e.to_dict() for e in rebuilt] == [
            e.to_dict() for e in original
        ]

    def test_export_chrome_to_stdout(self, capsys, tmp_path):
        import json

        path = self._record_trace(capsys, tmp_path)
        assert main(["trace", "export", path]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "traceEvents" in document

    def test_export_ndjson_requires_out(self, capsys, tmp_path):
        path = self._record_trace(capsys, tmp_path)
        assert main(["trace", "export", path, "--format", "ndjson"]) == 1
        assert "requires --out" in capsys.readouterr().err

    def test_export_ndjson_is_idempotent(self, capsys, tmp_path):
        path = self._record_trace(capsys, tmp_path)
        out = str(tmp_path / "copy.ndjson")
        assert main([
            "trace", "export", path, "--format", "ndjson", "--out", out,
        ]) == 0
        assert (
            open(out, encoding="utf-8").read()
            == open(path, encoding="utf-8").read()
        )

    def test_diff_against_self_is_flat(self, capsys, tmp_path):
        path = self._record_trace(capsys, tmp_path)
        assert main([
            "trace", "diff", path, path, "--fail-over", "0.0",
        ]) == 0
        assert "trace diff" in capsys.readouterr().out

    def test_simulate_trace_out(self, capsys, tmp_path):
        from repro.obs import read_trace_ndjson
        from repro.obs.tracing import validate_episode

        path = str(tmp_path / "sim.ndjson")
        assert main([
            "simulate", "--n", "20", "--members", "3", "--seed", "4",
            "--fail-worst", "--trace-out", path,
        ]) == 0
        episodes = read_trace_ndjson(path).episodes
        assert episodes
        for episode in episodes:
            assert episode.origin == "des"
            assert validate_episode(episode) == []


class TestController:
    ARGS = [
        "controller", "--n", "50", "--groups", "10", "--sources", "4",
        "--shard-size", "4",
    ]

    def test_hosts_and_restores(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "hosted: 10 groups" in out
        assert "worst restoration latency" in out

    def test_serve_alias_sharded_matches_serial(self, capsys):
        assert main(self.ARGS) == 0
        serial = capsys.readouterr().out
        assert main(["serve", *self.ARGS[1:], "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_spec_file_round_trips_the_flags(self, capsys, tmp_path):
        from repro.controller import ServiceSpec

        assert main(self.ARGS) == 0
        from_flags = capsys.readouterr().out
        path = str(tmp_path / "spec.json")
        spec = ServiceSpec(n=50, groups=10, sources=4, shard_size=4)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(spec.to_json())
        assert main(["controller", "--spec", path]) == 0
        assert capsys.readouterr().out == from_flags

    def test_spec_file_rejects_extra_flags(self, capsys, tmp_path):
        path = str(tmp_path / "spec.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{}")
        code = main(["controller", "--spec", path, "--groups", "7"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--spec replaces the whole service spec" in err
        assert "--groups" in err

    def test_missing_spec_file_is_exit_2(self, capsys):
        assert main(["controller", "--spec", "/nope/spec.json"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_bad_spec_value_is_exit_2(self, capsys):
        assert main(["controller", "--groups", "0"]) == 2
        assert "repro: error" in capsys.readouterr().err

    def test_bad_failure_mode_is_exit_2(self, capsys):
        assert main([
            "controller", "--n", "30", "--groups", "2", "--sources", "2",
            "--failure", "link:999-998",
        ]) == 2
        assert "no link" in capsys.readouterr().err

    def test_obs_out_report(self, capsys, tmp_path):
        path = str(tmp_path / "controller.json")
        assert main([*self.ARGS, "--obs-out", path]) == 0
        capsys.readouterr()
        assert main(["obs", "report", path]) == 0
        out = capsys.readouterr().out
        assert "controller.groups_opened" in out

    def test_telemetry_flight_record_tails(self, capsys, tmp_path):
        path = str(tmp_path / "flight.ndjson")
        assert main([*self.ARGS, "--telemetry-out", path]) == 0
        capsys.readouterr()
        assert main(["obs", "tail", path]) == 0
        assert "group.restore" in capsys.readouterr().out

    def test_info_documents_the_controller(self, capsys):
        assert main(["info"]) == 0
        assert "repro.controller" in capsys.readouterr().out


class TestDistribution:
    ARGS = [
        "distribution", "--engines", "smrp", "spf", "--groups", "30",
        "--shard-size", "8",
    ]

    def test_prints_quantile_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "== restoration-latency distribution ==" in out
        assert "p99.9" in out
        assert "smrp" in out and "spf" in out

    def test_parallel_output_byte_identical(self, capsys):
        assert main(self.ARGS) == 0
        serial = capsys.readouterr().out
        assert main([*self.ARGS, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_resumed_output_byte_identical(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        assert main(self.ARGS) == 0
        serial = capsys.readouterr().out
        assert main([*self.ARGS, "--checkpoint-dir", ckpt]) == 0
        assert capsys.readouterr().out == serial
        assert main([*self.ARGS, "--checkpoint-dir", ckpt, "--resume"]) == 0
        assert capsys.readouterr().out == serial

    def test_bad_engine_rejected_by_parser(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["distribution", "--engines", "warp"])

    def test_bad_groups_is_exit_2(self, capsys):
        assert main(["distribution", "--groups", "0"]) == 2
        assert "repro: error" in capsys.readouterr().err

    def test_obs_report_carries_hdr_quantiles(self, capsys, tmp_path):
        path = str(tmp_path / "dist.json")
        assert main([*self.ARGS, "--obs-out", path]) == 0
        capsys.readouterr()
        assert main(["obs", "report", path]) == 0
        out = capsys.readouterr().out
        assert "dist.latency.smrp" in out
        assert "p99=" in out


class TestProfileFlag:
    def test_profile_prints_self_time_table_to_stderr(self, capsys):
        args = [
            "distribution", "--engines", "smrp", "--groups", "30",
            "--shard-size", "8",
        ]
        assert main(args) == 0
        plain = capsys.readouterr()
        assert main([*args, "--profile"]) == 0
        profiled = capsys.readouterr()
        # observe-only: stdout stays byte-identical
        assert profiled.out == plain.out
        assert "self-time profile" in profiled.err
        assert "prof.run" in profiled.err
        assert "wall" in profiled.err

    def test_profile_records_wall_in_report_meta(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "run.json")
        assert main([
            "distribution", "--engines", "smrp", "--groups", "30",
            "--shard-size", "8", "--profile", "--obs-out", path,
        ]) == 0
        report = json.load(open(path, encoding="utf-8"))
        assert report["meta"]["profile_wall_s"] > 0
        assert report["meta"]["command"] == "distribution"


class TestObsFlame:
    def _profiled_report(self, tmp_path) -> str:
        path = str(tmp_path / "run.json")
        assert main([
            "distribution", "--engines", "smrp", "--groups", "30",
            "--shard-size", "8", "--profile", "--obs-out", path,
        ]) == 0
        return path

    def test_collapsed_stacks_to_stdout(self, capsys, tmp_path):
        path = self._profiled_report(tmp_path)
        capsys.readouterr()
        assert main(["obs", "flame", path]) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert lines, "expected collapsed-stack lines"
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert stack.startswith("prof.run")
        assert "total self time" in captured.err
        assert "wall-clock coverage" in captured.err

    def test_self_time_within_one_percent_of_wall(self, capsys, tmp_path):
        """The acceptance contract: on a serial profiled run the flame's
        self-time total matches the measured wall clock within 1%."""
        import json

        path = self._profiled_report(tmp_path)
        capsys.readouterr()
        assert main(["obs", "flame", path]) == 0
        out = capsys.readouterr().out
        covered = sum(
            int(line.rsplit(" ", 1)[1]) for line in out.splitlines()
        ) / 1_000_000
        wall = json.load(open(path, encoding="utf-8"))["meta"]["profile_wall_s"]
        assert abs(covered - wall) / wall < 0.01

    def test_out_file(self, capsys, tmp_path):
        path = self._profiled_report(tmp_path)
        out_path = str(tmp_path / "flame.txt")
        capsys.readouterr()
        assert main(["obs", "flame", path, "--out", out_path]) == 0
        assert "written to" in capsys.readouterr().out
        text = open(out_path, encoding="utf-8").read()
        assert text.startswith("prof.run")

    def test_rejects_non_report(self, capsys, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("[]")
        assert main(["obs", "flame", str(junk)]) == 1
        assert "repro: error" in capsys.readouterr().err


class TestObsDiffQuantiles:
    def _dist_report(self, tmp_path, name: str) -> str:
        path = str(tmp_path / name)
        assert main([
            "distribution", "--engines", "smrp", "--groups", "30",
            "--shard-size", "8", "--obs-out", path,
        ]) == 0
        return path

    def test_quantile_regression_trips_fail_over(self, capsys, tmp_path):
        import json

        a = self._dist_report(tmp_path, "a.json")
        report = json.load(open(a, encoding="utf-8"))
        # Shift every latency histogram 8 buckets up (~17% regression).
        for payload in report["metrics"]["hdr_histograms"].values():
            payload["counts"] = [[i + 8, c] for i, c in payload["counts"]]
            payload["min"] *= 1.2
            payload["max"] *= 1.2
        b = str(tmp_path / "b.json")
        json.dump(report, open(b, "w", encoding="utf-8"))
        capsys.readouterr()
        assert main(["obs", "diff", a, b, "--fail-over", "1.1"]) == 1
        captured = capsys.readouterr()
        assert "latency-quantile" in captured.out
        assert "latency-quantile ratio exceeds" in captured.err

    def test_identical_reports_pass_gate(self, capsys, tmp_path):
        a = self._dist_report(tmp_path, "a.json")
        capsys.readouterr()
        assert main(["obs", "diff", a, a, "--fail-over", "1.05"]) == 0
        assert "latency-quantile ratios" in capsys.readouterr().out
