"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_figure_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "11"])


class TestInfo:
    def test_lists_components(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro.core" in out
        assert "DSN 2005" in out


class TestScenario:
    def test_runs_small_scenario(self, capsys):
        code = main([
            "scenario", "--n", "30", "--group-size", "6",
            "--alpha", "0.6", "--topology-seed", "2", "--member-seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RD SPF" in out and "RD SMRP" in out
        assert "Cost_relative" in out

    def test_query_mode_flag(self, capsys):
        code = main([
            "scenario", "--n", "30", "--group-size", "5",
            "--alpha", "0.6", "--knowledge", "query", "--no-reshape",
        ])
        assert code == 0
        assert "scenario:" in capsys.readouterr().out


class TestSimulate:
    def test_join_only(self, capsys):
        code = main(["simulate", "--n", "20", "--members", "3", "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "join latency" in out
        assert "JoinReq" in out

    def test_with_failure(self, capsys):
        code = main([
            "simulate", "--n", "20", "--members", "3", "--seed", "4",
            "--fail-worst",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "injected failure" in out


class TestFigures:
    def test_single_quick_figure(self, capsys):
        code = main(["figures", "--quick", "--figure", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out


class TestExecutorFlags:
    @pytest.mark.parametrize("command", ["figures", "scenario", "simulate"])
    def test_jobs_below_one_rejected(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_serial_executor_with_many_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "--executor", "serial", "--jobs", "4"])
        assert excinfo.value.code == 2
        assert "requires --executor process" in capsys.readouterr().err

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--executor", "threads"])

    def test_scenario_through_process_executor(self, capsys):
        code = main([
            "scenario", "--n", "30", "--group-size", "6", "--alpha", "0.6",
            "--executor", "process", "--jobs", "2",
        ])
        assert code == 0
        assert "Cost_relative" in capsys.readouterr().out

    def test_parallel_figure_matches_serial(self, capsys):
        argv = ["figures", "--quick", "--figure", "8"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_simulate_notes_single_work_unit(self, capsys):
        code = main([
            "simulate", "--n", "20", "--members", "3", "--seed", "4",
            "--jobs", "2",
        ])
        assert code == 0
        assert "single work unit" in capsys.readouterr().out

    def test_info_documents_parallel_flags(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "repro.api" in out


class TestObs:
    def test_report_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "report"])

    def test_scenario_obs_out_then_report(self, capsys, tmp_path):
        path = str(tmp_path / "run.json")
        code = main([
            "scenario", "--n", "30", "--group-size", "6",
            "--alpha", "0.6", "--topology-seed", "2", "--member-seed", "3",
            "--obs-out", path,
        ])
        assert code == 0
        assert path in capsys.readouterr().out

        assert main(["obs", "report", path]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out
        assert "command: scenario" in out
        assert "smrp.joins" in out
        assert "scenario.build.smrp" in out

    def test_simulate_obs_out_then_report(self, capsys, tmp_path):
        path = str(tmp_path / "sim.json")
        code = main([
            "simulate", "--n", "20", "--members", "3", "--seed", "4",
            "--obs-out", path,
        ])
        assert code == 0
        capsys.readouterr()

        assert main(["obs", "report", path]) == 0
        out = capsys.readouterr().out
        assert "sim.engine.events_fired" in out
        assert "sim.msg.sent.JoinReq" in out
        assert "sim.engine.queue_depth" in out

    def test_report_rejects_non_report_json(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        assert main(["obs", "report", str(path)]) == 1
        assert "not a repro run report" in capsys.readouterr().err

    def test_report_missing_file(self, capsys):
        assert main(["obs", "report", "/nonexistent/run.json"]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_obs_out_rejects_missing_directory(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "scenario", "--n", "30", "--group-size", "6",
                "--obs-out", "/nonexistent-dir/run.json",
            ])
        assert "--obs-out directory does not exist" in capsys.readouterr().err
