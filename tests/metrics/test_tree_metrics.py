"""Tests for tree-quality metrics."""

import pytest

from repro.errors import MulticastError
from repro.graph.generators import node_id
from repro.metrics.tree_metrics import (
    average_delay,
    delay_stretch,
    max_delay,
    member_delays,
    tree_cost,
)
from repro.multicast.tree import MulticastTree
from repro.routing.spf import dijkstra


@pytest.fixture
def tree(fig1):
    t = MulticastTree(fig1, node_id("S"))
    t.graft([node_id("S"), node_id("A"), node_id("C")])
    t.graft([node_id("A"), node_id("D")])
    return t


class TestDelays:
    def test_member_delays(self, tree):
        delays = member_delays(tree)
        assert delays == {node_id("C"): 2.0, node_id("D"): 2.0}

    def test_average_delay(self, tree):
        assert average_delay(tree) == 2.0

    def test_max_delay(self, tree):
        assert max_delay(tree) == 2.0

    def test_empty_tree_rejected(self, fig1):
        empty = MulticastTree(fig1, node_id("S"))
        with pytest.raises(MulticastError):
            average_delay(empty)
        with pytest.raises(MulticastError):
            max_delay(empty)


class TestCost:
    def test_tree_cost(self, tree):
        assert tree_cost(tree) == 3.0

    def test_cost_tracks_structure(self, tree):
        tree.prune(node_id("D"))
        assert tree_cost(tree) == 2.0


class TestJitter:
    def test_equal_delays_zero_jitter(self, tree):
        from repro.metrics.tree_metrics import delay_jitter

        assert delay_jitter(tree) == 0.0  # C and D both at delay 2

    def test_jitter_reflects_spread(self, fig1):
        from repro.metrics.tree_metrics import delay_jitter

        t = MulticastTree(fig1, node_id("S"))
        t.graft([node_id("S"), node_id("A"), node_id("C")])  # delay 2
        t.graft([node_id("S"), node_id("B")])  # delay 2... B at 2
        t.graft([node_id("B"), node_id("D")])  # delay 3
        assert delay_jitter(t) == 1.0

    def test_empty_tree_rejected(self, fig1):
        from repro.errors import MulticastError
        from repro.metrics.tree_metrics import delay_jitter

        with pytest.raises(MulticastError):
            delay_jitter(MulticastTree(fig1, node_id("S")))


class TestStretch:
    def test_spf_tree_has_unit_stretch(self, tree, fig1):
        spf = dijkstra(fig1, node_id("S"))
        stretch = delay_stretch(tree, spf.dist)
        assert all(s == pytest.approx(1.0) for s in stretch.values())

    def test_detour_tree_stretch(self, fig1):
        t = MulticastTree(fig1, node_id("S"))
        # D joins via the longer B route: delay 3 vs SPF 2.
        t.graft([node_id("S"), node_id("B"), node_id("D")])
        spf = dijkstra(fig1, node_id("S"))
        stretch = delay_stretch(t, spf.dist)
        assert stretch[node_id("D")] == pytest.approx(1.5)
