"""Tests for worst-case recovery measurement."""

import pytest

from repro.errors import UnrecoverableFailureError
from repro.graph.generators import node_id
from repro.multicast.tree import MulticastTree
from repro.metrics.recovery_metrics import (
    worst_case_recovery,
    worst_case_recovery_all,
)


@pytest.fixture
def tree(fig1):
    t = MulticastTree(fig1, node_id("S"))
    t.graft([node_id("S"), node_id("A"), node_id("C")])
    t.graft([node_id("A"), node_id("D")])
    return t


class TestWorstCase:
    def test_fails_first_link_and_recovers(self, fig1, tree):
        result = worst_case_recovery(fig1, tree, node_id("D"), strategy="local")
        assert result.failure.link_failed(node_id("S"), node_id("A"))
        assert result.recovered
        assert result.recovery_distance > 0

    def test_local_vs_global_distances(self, fig1, tree):
        local = worst_case_recovery(fig1, tree, node_id("D"), strategy="local")
        global_ = worst_case_recovery(fig1, tree, node_id("D"), strategy="global")
        # On the same tree, local (min over targets) never loses.
        assert local.recovery_distance <= global_.recovery_distance

    def test_unrecoverable_member(self, line4):
        t = MulticastTree(line4, 0)
        t.graft([0, 1, 2, 3])
        result = worst_case_recovery(line4, t, 3, strategy="local")
        assert not result.recovered
        with pytest.raises(UnrecoverableFailureError):
            _ = result.recovery_distance

    def test_all_members_measured(self, fig1, tree):
        results = worst_case_recovery_all(fig1, tree, strategy="local")
        assert set(results) == {node_id("C"), node_id("D")}
        assert all(r.recovered for r in results.values())

    def test_each_member_gets_own_failure(self, waxman50):
        from repro.multicast.spf_protocol import SPFMulticastProtocol

        tree = SPFMulticastProtocol(waxman50, 0).build([9, 22, 37])
        results = worst_case_recovery_all(waxman50, tree, strategy="global")
        for member, measurement in results.items():
            first_link = tuple(tree.path_from_source(member)[:2])
            assert measurement.failure.link_failed(*first_link)
