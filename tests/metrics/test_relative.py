"""Tests for the paper's relative metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.relative import (
    relative_cost,
    relative_delay,
    relative_recovery_distance,
)


class TestRelativeRecoveryDistance:
    def test_shorter_smrp_is_positive(self):
        # Paper's example: 20% shorter recovery path.
        assert relative_recovery_distance(10.0, 8.0) == pytest.approx(0.2)

    def test_equal_is_zero(self):
        assert relative_recovery_distance(5.0, 5.0) == 0.0

    def test_longer_smrp_is_negative(self):
        assert relative_recovery_distance(5.0, 6.0) == pytest.approx(-0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_recovery_distance(0.0, 1.0)


class TestRelativeDelay:
    def test_penalty_is_positive(self):
        # Paper's example: 5% higher end-to-end delay.
        assert relative_delay(100.0, 105.0) == pytest.approx(0.05)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_delay(0.0, 1.0)


class TestRelativeCost:
    def test_penalty_is_positive(self):
        assert relative_cost(200.0, 210.0) == pytest.approx(0.05)

    def test_cheaper_smrp_is_negative(self):
        assert relative_cost(200.0, 190.0) == pytest.approx(-0.05)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_cost(0.0, 1.0)
