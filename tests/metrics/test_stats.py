"""Tests for summary statistics and confidence intervals."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.metrics.stats import Summary, confidence_interval_95, summarize


class TestSummarize:
    def test_mean_and_std(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.std == pytest.approx(math.sqrt(5.0 / 3.0))
        assert s.n == 4

    def test_ci_contains_mean(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.ci_low < s.mean < s.ci_high

    def test_ci_symmetric(self):
        s = summarize([5.0, 7.0, 9.0, 11.0])
        assert s.mean - s.ci_low == pytest.approx(s.ci_high - s.mean)

    def test_single_sample_zero_width(self):
        s = summarize([3.0])
        assert (s.ci_low, s.ci_high) == (3.0, 3.0)
        assert s.std == 0.0

    def test_constant_sample_zero_width(self):
        s = summarize([2.0] * 10)
        assert s.ci_half_width == 0.0

    def test_more_samples_shrink_ci(self):
        small = summarize([1.0, 2.0, 3.0] * 3)
        large = summarize([1.0, 2.0, 3.0] * 30)
        assert large.ci_half_width < small.ci_half_width

    def test_t_interval_wider_than_normal_for_small_n(self):
        """With n=3, the t critical value (4.30) far exceeds z (1.96)."""
        s = summarize([0.0, 1.0, 2.0])
        normal_half = 1.96 * s.std / math.sqrt(3)
        assert s.ci_half_width > normal_half

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([1.0, 2.0], confidence=1.5)

    def test_confidence_interval_95_helper(self):
        lo, hi = confidence_interval_95([1.0, 2.0, 3.0])
        s = summarize([1.0, 2.0, 3.0])
        assert (lo, hi) == (s.ci_low, s.ci_high)

    def test_str_rendering(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "n=3" in text and "±" in text

    def test_wider_confidence_widens_interval(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        s90 = summarize(data, confidence=0.90)
        s99 = summarize(data, confidence=0.99)
        assert s99.ci_half_width > s90.ci_half_width
