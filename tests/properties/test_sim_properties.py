"""Property tests for the discrete-event protocol implementation.

Random join/leave schedules (arbitrary interleavings, arbitrary spacing)
must always leave the distributed state consistent: the extracted tree is
valid, membership matches the surviving schedule, and — once the control
plane quiesces — advertised SHR values equal the ground truth.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.core.shr import shr_table
from repro.multicast.validation import check_tree_invariants
from repro.sim.protocols import SmrpSimulation


def make_topology(seed: int):
    return waxman_topology(
        WaxmanConfig(n=18, alpha=0.6, beta=0.4, seed=seed)
    ).topology


@st.composite
def schedules(draw):
    seed = draw(st.integers(0, 50))
    events = draw(
        st.lists(
            st.tuples(st.booleans(), st.integers(1, 17)),
            min_size=1,
            max_size=12,
        )
    )
    return seed, events


class TestDesSchedules:
    @settings(max_examples=15, deadline=None)
    @given(schedules())
    def test_tree_valid_and_membership_exact(self, case):
        seed, events = case
        topology = make_topology(seed)
        sim = SmrpSimulation(topology, 0, d_thresh=0.5)
        spacing = 60.0 * max(l.delay for l in topology.links())
        expected: set[int] = set()
        for index, (is_join, node) in enumerate(events):
            at = spacing * (index + 1)
            if is_join and node not in expected:
                sim.schedule_join(at, node)
                expected.add(node)
            elif not is_join and node in expected:
                sim.schedule_leave(at, node)
                expected.discard(node)
        sim.run(until=spacing * (len(events) + 4))
        tree = sim.extract_tree()
        check_tree_invariants(tree)
        assert tree.members == frozenset(expected)

    @settings(max_examples=10, deadline=None)
    @given(schedules())
    def test_advertised_shr_converges(self, case):
        seed, events = case
        topology = make_topology(seed)
        sim = SmrpSimulation(topology, 0, d_thresh=0.5)
        spacing = 60.0 * max(l.delay for l in topology.links())
        members: set[int] = set()
        for index, (is_join, node) in enumerate(events):
            at = spacing * (index + 1)
            if is_join and node not in members:
                sim.schedule_join(at, node)
                members.add(node)
            elif not is_join and node in members:
                sim.schedule_leave(at, node)
                members.discard(node)
        # Generous quiescence time: several advert periods past the last event.
        sim.run(until=spacing * (len(events) + 8))
        tree = sim.extract_tree()
        truth = shr_table(tree)
        view = sim.shr_view()
        for node, value in truth.items():
            assert view.get(node) == value

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50), st.integers(2, 6))
    def test_data_plane_lossless_without_failures(self, seed, n_members):
        topology = make_topology(seed)
        sim = SmrpSimulation(topology, 0, d_thresh=0.5)
        spacing = 60.0 * max(l.delay for l in topology.links())
        members = list(range(1, 1 + n_members))
        for index, m in enumerate(members):
            sim.schedule_join(spacing * (index + 1), m)
        sim.start_data(period=spacing / 10.0)
        sim.run(until=spacing * (len(members) + 6))
        for m in members:
            log = sim.deliveries.get(m, [])
            assert log, f"member {m} never received data"
            missing, _ = sim.disruption(m)
            assert missing == 0
