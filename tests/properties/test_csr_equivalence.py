"""CSR kernels vs. the dict-based reference implementation.

The compiled kernels in ``repro.routing.csr`` must be *bit-identical* to
the retained specification in ``repro.routing.spf_reference``: same
distances, same parents (tie-breaks included), and same dict insertion
order (downstream routing tables iterate ``dist``, so even ordering is
observable behaviour).  These properties drive both through randomised
Waxman ensembles crossed with random failure scenarios and barrier sets.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra, dijkstra_with_barriers
from repro.routing.spf_reference import (
    dijkstra_reference,
    dijkstra_with_barriers_reference,
)


def make_topology(seed: int, n: int = 25):
    return waxman_topology(
        WaxmanConfig(n=n, alpha=0.5, beta=0.4, seed=seed)
    ).topology


def random_failures(topology, link_indices, node_ids) -> FailureSet:
    """A failure scenario built from raw hypothesis-drawn indices."""
    links = topology.links()
    failed_links = frozenset(
        (links[i % len(links)].u, links[i % len(links)].v) for i in link_indices
    )
    failed_nodes = frozenset(n for n in node_ids if topology.has_node(n))
    if not failed_links and not failed_nodes:
        return NO_FAILURES
    return FailureSet(
        failed_links=frozenset(
            (u, v) if u <= v else (v, u) for u, v in failed_links
        ),
        failed_nodes=failed_nodes,
    )


def assert_identical(kernel, reference):
    # dict equality plus explicit key-order equality: insertion order is
    # part of the contract (routing tables iterate dist).
    assert kernel.dist == reference.dist
    assert kernel.parent == reference.parent
    assert list(kernel.dist) == list(reference.dist)
    assert list(kernel.parent) == list(reference.parent)


class TestCsrMatchesReference:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 300),
        st.integers(0, 24),
        st.lists(st.integers(0, 100), max_size=3),
        st.lists(st.integers(0, 24), max_size=2),
        st.sampled_from(["delay", "cost"]),
    )
    def test_dijkstra_identical(self, seed, source, link_idx, node_ids, weight):
        topology = make_topology(seed)
        failures = random_failures(topology, link_idx, node_ids)
        kernel = dijkstra(topology, source, weight=weight, failures=failures)
        reference = dijkstra_reference(
            topology, source, weight=weight, failures=failures
        )
        assert_identical(kernel, reference)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 300),
        st.integers(0, 24),
        st.lists(st.integers(0, 100), max_size=3),
        st.integers(2, 5),
        st.booleans(),
    )
    def test_barriers_identical(self, seed, source, link_idx, modulo, source_in):
        topology = make_topology(seed)
        failures = random_failures(topology, link_idx, [])
        barriers = {n for n in topology.nodes() if n % modulo == 0}
        if not source_in:
            barriers.discard(source)
        kernel = dijkstra_with_barriers(
            topology, source, barriers=barriers, failures=failures
        )
        reference = dijkstra_with_barriers_reference(
            topology, source, barriers=barriers, failures=failures
        )
        assert_identical(kernel, reference)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 300), st.integers(0, 14))
    def test_small_dense_ensemble(self, seed, source):
        """Denser graphs produce more equal-cost ties to agree on."""
        topology = make_topology(seed, n=15)
        kernel = dijkstra(topology, source)
        reference = dijkstra_reference(topology, source)
        assert_identical(kernel, reference)
