"""Property tests for the HDR (log-bucketed) histogram.

The contracts the rest of the repo leans on:

- **Bounded relative error**: ``quantile(q)`` is within the bucket
  midpoint's relative error (``growth**0.5 - 1``) of the exact sample
  quantile; ``quantile(0)``/``quantile(1)`` are exactly min/max.
- **Order independence**: merge is commutative and associative, and the
  same observations in any order (or split across any sharding) produce
  the *identical* histogram — that is what makes sharded figure tables
  byte-identical to serial ones.
- **Serialization**: ``to_dict``/``from_dict`` round-trips exactly, and
  run-report merging via ``repro.obs.merge`` preserves every value.
"""

from __future__ import annotations

import json
import math

from hypothesis import given, settings, strategies as st

from repro.obs import Observability
from repro.obs.merge import merge_report_into
from repro.obs.registry import DEFAULT_HDR_GROWTH, HdrHistogram

#: Latency-shaped positive values across several decades, plus exact
#: floats so boundary values (1.0, powers of the growth factor) appear.
values = st.one_of(
    st.floats(min_value=1e-6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=0, max_value=10**6).map(float),
)
samples = st.lists(values, min_size=1, max_size=200)

#: Worst-case relative error of a bucket midpoint, with float slack.
TOLERANCE = (DEFAULT_HDR_GROWTH ** 0.5 - 1) * 1.01 + 1e-12


def build(vals, name="t.h") -> HdrHistogram:
    h = HdrHistogram(name)
    for v in vals:
        h.observe(v)
    return h


def exact_quantile(vals: list[float], q: float) -> float:
    """Nearest-rank quantile: the value at rank ``ceil(q * n)``."""
    ordered = sorted(vals)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def as_state(h: HdrHistogram) -> tuple:
    """Full observable state, for exact-equality comparisons."""
    return (
        h.growth, sorted(h.counts.items()), h.zero_count, h.count,
        h.min, h.max, h.total, h.mean,
    )


class TestQuantileAccuracy:
    @settings(max_examples=100, deadline=None)
    @given(samples, st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_relative_error(self, vals, q):
        h = build(vals)
        estimate = h.quantile(q)
        exact = exact_quantile(vals, q)
        if exact <= 0:
            # Non-positive values share the zero bucket; the estimate
            # for a rank that lands there is the exact minimum.
            assert estimate <= max(0.0, h.min) + 1e-12
        else:
            assert abs(estimate - exact) <= TOLERANCE * exact

    @settings(max_examples=60, deadline=None)
    @given(samples)
    def test_extremes_are_exact(self, vals):
        h = build(vals)
        assert h.quantile(0.0) == min(vals)
        assert h.quantile(1.0) == max(vals)

    def test_empty_quantile_is_none(self):
        assert HdrHistogram("t.h").quantile(0.5) is None

    @settings(max_examples=60, deadline=None)
    @given(samples)
    def test_count_and_mean_track_samples(self, vals):
        h = build(vals)
        assert h.count == len(vals)
        positive = [v for v in vals if v > 0]
        approx_total = sum(h.bucket_value(h.bucket_index(v)) for v in positive)
        assert math.isclose(h.total, approx_total, rel_tol=1e-9, abs_tol=1e-12)


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(samples, samples)
    def test_merge_is_commutative(self, a_vals, b_vals):
        ab = build(a_vals)
        ab.merge(build(b_vals))
        ba = build(b_vals)
        ba.merge(build(a_vals))
        assert as_state(ab) == as_state(ba)

    @settings(max_examples=40, deadline=None)
    @given(samples, samples, samples)
    def test_merge_is_associative(self, a_vals, b_vals, c_vals):
        left = build(a_vals)
        left.merge(build(b_vals))
        left.merge(build(c_vals))
        bc = build(b_vals)
        bc.merge(build(c_vals))
        right = build(a_vals)
        right.merge(bc)
        assert as_state(left) == as_state(right)

    @settings(max_examples=60, deadline=None)
    @given(samples, st.integers(min_value=1, max_value=8))
    def test_sharded_merge_equals_serial(self, vals, shards):
        """Any sharding of the observations merges back to the serial
        histogram exactly — the byte-identity invariant."""
        serial = build(vals)
        merged = HdrHistogram("t.h")
        for i in range(shards):
            merged.merge(build(vals[i::shards]))
        assert as_state(merged) == as_state(serial)
        assert serial.to_dict() == merged.to_dict()


class TestSerialization:
    @settings(max_examples=60, deadline=None)
    @given(samples)
    def test_round_trip_is_exact(self, vals):
        h = build(vals)
        payload = json.loads(json.dumps(h.to_dict()))
        back = HdrHistogram.from_dict(h.name, payload)
        assert as_state(back) == as_state(h)
        assert back.to_dict() == h.to_dict()

    @settings(max_examples=40, deadline=None)
    @given(samples, st.integers(min_value=1, max_value=4))
    def test_worker_report_merge_matches_serial(self, vals, shards):
        """Worker run-reports carrying hdr histograms fold into the
        parent via ``merge_report_into`` with no value drift."""
        serial_obs = Observability(enabled=True)
        serial_hist = serial_obs.hdr_histogram("t.h")
        for v in vals:
            serial_hist.observe(v)

        parent = Observability(enabled=True)
        for i in range(shards):
            worker = Observability(enabled=True)
            hist = worker.hdr_histogram("t.h")
            for v in vals[i::shards]:
                hist.observe(v)
            merge_report_into(parent, worker.run_report())
        merged = parent.run_report()["metrics"]["hdr_histograms"]["t.h"]
        serial = serial_obs.run_report()["metrics"]["hdr_histograms"]["t.h"]
        assert json.dumps(merged, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )
