"""Property tests for the SHR metric on arbitrary trees.

The central identity the distributed protocol relies on is
Eq. (1) ≡ Eq. (2); these tests check it (and related SHR facts) on
randomly generated topologies, trees, and member sets.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.shr import (
    adjusted_shr_table,
    link_utilisation,
    shr_direct,
    shr_excluding_subtree,
    shr_incremental,
    subtree_member_counts,
)


def build_tree(topo_seed: int, member_seed: int, use_smrp: bool):
    """A random tree over a random topology, via either protocol."""
    topology = waxman_topology(
        WaxmanConfig(n=30, alpha=0.5, beta=0.4, seed=topo_seed)
    ).topology
    import numpy as np

    rng = np.random.default_rng(member_seed)
    members = [int(m) for m in rng.choice(range(1, 30), size=8, replace=False)]
    if use_smrp:
        proto = SMRPProtocol(topology, 0, config=SMRPConfig(d_thresh=0.4))
        proto.build(members)
        return topology, proto.tree
    proto = SPFMulticastProtocol(topology, 0)
    return topology, proto.build(members)


tree_params = st.tuples(
    st.integers(0, 200), st.integers(0, 200), st.booleans()
)


class TestEq1EquivalentToEq2:
    @settings(max_examples=25, deadline=None)
    @given(tree_params)
    def test_direct_equals_incremental(self, params):
        _, tree = build_tree(*params)
        table = shr_incremental(tree)
        for node in tree.on_tree_nodes():
            assert table[node] == shr_direct(tree, node)

    @settings(max_examples=25, deadline=None)
    @given(tree_params)
    def test_shr_equals_sum_of_link_utilisation(self, params):
        """Eq. (1) stated over the precomputed N_L table."""
        _, tree = build_tree(*params)
        util = link_utilisation(tree)
        for node in tree.on_tree_nodes():
            path = tree.path_from_source(node)
            expected = sum(
                util[(min(u, v), max(u, v))] for u, v in zip(path, path[1:])
            )
            assert shr_direct(tree, node) == expected


class TestShrStructure:
    @settings(max_examples=25, deadline=None)
    @given(tree_params)
    def test_shr_weakly_increases_down_any_path(self, params):
        """SHR(child) = SHR(parent) + N_child >= SHR(parent)."""
        _, tree = build_tree(*params)
        table = shr_incremental(tree)
        for node in tree.on_tree_nodes():
            parent = tree.parent(node)
            if parent is not None:
                assert table[node] >= table[parent]

    @settings(max_examples=25, deadline=None)
    @given(tree_params)
    def test_source_shr_zero_and_counts_bound(self, params):
        _, tree = build_tree(*params)
        table = shr_incremental(tree)
        assert table[tree.source] == 0
        n_members = len(tree.members)
        depth = max(len(tree.path_from_source(n)) for n in tree.on_tree_nodes())
        # Every path node contributes at most the full member count.
        assert all(v <= n_members * depth for v in table.values())

    @settings(max_examples=25, deadline=None)
    @given(tree_params)
    def test_n_r_consistency(self, params):
        """N_R equals own membership plus the per-interface sums."""
        _, tree = build_tree(*params)
        counts = subtree_member_counts(tree)
        for node in tree.on_tree_nodes():
            expected = (1 if tree.is_member(node) else 0) + sum(
                counts[c] for c in tree.children(node)
            )
            assert counts[node] == expected


class TestAdjustedShr:
    @settings(max_examples=25, deadline=None)
    @given(tree_params)
    def test_adjustment_never_exceeds_raw(self, params):
        _, tree = build_tree(*params)
        movers = [m for m in tree.members if m != tree.source]
        if not movers:
            return
        mover = sorted(movers)[0]
        subtree = tree.subtree_nodes(mover)
        for merge in tree.on_tree_nodes():
            if merge in subtree:
                continue
            adjusted = shr_excluding_subtree(tree, merge, mover)
            assert 0 <= adjusted <= shr_direct(tree, merge)

    @settings(max_examples=25, deadline=None)
    @given(tree_params)
    def test_batched_table_matches_per_node_form(self, params):
        """adjusted_shr_table agrees exactly with shr_excluding_subtree
        for every on-tree node and every possible mover."""
        _, tree = build_tree(*params)
        for mover in tree.on_tree_nodes():
            if mover == tree.source:
                continue
            table = adjusted_shr_table(tree, mover)
            assert set(table) == set(tree.on_tree_nodes())
            for merge in tree.on_tree_nodes():
                assert table[merge] == shr_excluding_subtree(tree, merge, mover)
