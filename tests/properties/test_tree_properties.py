"""Property tests: tree invariants survive arbitrary operation sequences."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.errors import JoinRejectedError, UnrecoverableFailureError
from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.shr import shr_incremental
from repro.multicast.validation import check_tree_invariants
from repro.routing.spf import dijkstra


def make_topology(seed: int):
    return waxman_topology(
        WaxmanConfig(n=25, alpha=0.5, beta=0.4, seed=seed)
    ).topology


@st.composite
def operation_sequences(draw):
    """A random interleaving of joins and leaves over node ids 1..24."""
    seed = draw(st.integers(0, 100))
    ops = draw(
        st.lists(
            st.tuples(st.booleans(), st.integers(1, 24)),
            min_size=1,
            max_size=25,
        )
    )
    d_thresh = draw(st.sampled_from([0.0, 0.2, 0.4, 1.0]))
    return seed, ops, d_thresh


class TestOperationSequences:
    @settings(max_examples=30, deadline=None)
    @given(operation_sequences())
    def test_invariants_always_hold(self, case):
        seed, ops, d_thresh = case
        topology = make_topology(seed)
        proto = SMRPProtocol(
            topology, 0, config=SMRPConfig(d_thresh=d_thresh, self_check=False)
        )
        for is_join, node in ops:
            if is_join and not proto.tree.is_member(node):
                proto.join(node)
            elif not is_join and proto.tree.is_member(node):
                proto.leave(node)
            check_tree_invariants(proto.tree)
            # Distributed state stays consistent with the tree.
            assert proto.shr_values() == shr_incremental(proto.tree)

    @settings(max_examples=30, deadline=None)
    @given(operation_sequences())
    def test_members_exactly_tracked(self, case):
        seed, ops, d_thresh = case
        topology = make_topology(seed)
        proto = SMRPProtocol(topology, 0, config=SMRPConfig(d_thresh=d_thresh))
        expected: set[int] = set()
        for is_join, node in ops:
            if is_join and node not in expected:
                proto.join(node)
                expected.add(node)
            elif not is_join and node in expected:
                proto.leave(node)
                expected.discard(node)
        assert proto.tree.members == frozenset(expected)

    @settings(max_examples=20, deadline=None)
    @given(operation_sequences())
    def test_delay_bound_for_non_fallback_joins(self, case):
        seed, ops, d_thresh = case
        topology = make_topology(seed)
        proto = SMRPProtocol(
            topology, 0, config=SMRPConfig(d_thresh=d_thresh, allow_fallback=False)
        )
        spf = dijkstra(topology, 0)
        for is_join, node in ops:
            try:
                if is_join and not proto.tree.is_member(node):
                    proto.join(node)
                elif not is_join and proto.tree.is_member(node):
                    proto.leave(node)
            except JoinRejectedError:
                continue
            for member in proto.tree.members:
                assert (
                    proto.tree.delay_from_source(member)
                    <= (1 + d_thresh) * spf.dist[member] + 1e-9
                )


class TestRecoveryProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 100),
        st.integers(0, 100),
        st.integers(0, 10_000),
    )
    def test_recovery_avoids_failures_and_local_wins(
        self, topo_seed, member_seed, failure_seed
    ):
        """For a random worst-case member failure: detours avoid faulty
        components and the local detour never exceeds the global one."""
        from repro.core.recovery import (
            global_detour_recovery,
            local_detour_recovery,
            worst_case_failure,
        )

        topology = make_topology(topo_seed)
        rng = np.random.default_rng(member_seed)
        members = [int(m) for m in rng.choice(range(1, 25), 6, replace=False)]
        proto = SMRPProtocol(topology, 0, config=SMRPConfig(d_thresh=0.4))
        proto.build(members)
        member = members[failure_seed % len(members)]
        failure = worst_case_failure(proto.tree, member)
        try:
            local = local_detour_recovery(topology, proto.tree, member, failure)
            global_ = global_detour_recovery(topology, proto.tree, member, failure)
        except UnrecoverableFailureError:
            return  # bridge failure: nothing to compare
        assert not failure.path_affected(local.restoration_path)
        assert not failure.path_affected(global_.restoration_path)
        assert local.recovery_distance <= global_.recovery_distance + 1e-9
        # Restoration paths merge onto the surviving tree.
        surviving = proto.tree.surviving_component(failure)
        assert local.restoration_path[-1] in surviving
        assert global_.restoration_path[-1] in surviving
