"""Batch kernels vs. looped scalar runs — the full bit-identity contract.

The multi-root sweep (``repro.routing.batch``), the vectorized SHR tables
(``repro.core.shr``), and the array candidate scorer
(``repro.core.candidates``) all promise results *indistinguishable* from
their scalar/dict counterparts: same IEEE-754 values, same tie-breaks,
same dict insertion order, same builtin field types.  These properties
drive each pair through randomised Waxman ensembles crossed with random
failure scenarios, barrier sets, and member sets.
"""

from hypothesis import given, settings, strategies as st

from repro.core.candidates import enumerate_candidates
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.shr import (
    adjusted_shr_table,
    link_utilisation,
    shr_table,
)
from repro.graph.topology import Topology
from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.routing.batch import csr_dijkstra_multi, dijkstra_multi
from repro.routing.csr import (
    compile_failures,
    csr_dijkstra,
    csr_dijkstra_barriers,
)
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.spf import dijkstra


def make_topology(seed: int, n: int = 25):
    return waxman_topology(
        WaxmanConfig(n=n, alpha=0.5, beta=0.4, seed=seed)
    ).topology


def random_failures(topology, link_indices, node_ids) -> FailureSet:
    links = topology.links()
    failed_links = frozenset(
        (links[i % len(links)].u, links[i % len(links)].v) for i in link_indices
    )
    failed_nodes = frozenset(n for n in node_ids if topology.has_node(n))
    if not failed_links and not failed_nodes:
        return NO_FAILURES
    return FailureSet(
        failed_links=frozenset(
            (u, v) if u <= v else (v, u) for u, v in failed_links
        ),
        failed_nodes=failed_nodes,
    )


def assert_rows_match_scalar(csr, roots, weights, mask, barriers=None):
    """Each batch row must equal the scalar kernel's flat arrays exactly."""
    if barriers is None:
        bitset = None
    else:
        bitset = bytearray(csr.num_nodes)
        for i in barriers:
            bitset[i] = 1
    dist, parent, orders, _ = csr_dijkstra_multi(
        csr, roots, weights, mask, barriers=bitset
    )
    assert dist.shape == (len(roots), csr.num_nodes)
    assert parent.shape == (len(roots), csr.num_nodes)
    for row, root in enumerate(roots):
        if barriers is None:
            sdist, sparent, sorder = csr_dijkstra(
                csr, root, list(weights), mask
            )
        else:
            sdist, sparent, sorder = csr_dijkstra_barriers(
                csr, root, list(weights), mask, barriers
            )
        # Exact float equality is the contract, not approx.
        assert dist[row].tolist() == sdist
        assert parent[row].tolist() == sparent
        assert orders[row].tolist() == sorder


class TestMultiRootKernel:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 300),
        st.lists(st.integers(0, 24), min_size=1, max_size=8),
        st.lists(st.integers(0, 100), max_size=3),
        st.lists(st.integers(0, 24), max_size=2),
        st.sampled_from(["delay", "cost"]),
    )
    def test_matches_looped_scalar(self, seed, roots, link_idx, node_ids, weight):
        topology = make_topology(seed)
        failures = random_failures(topology, link_idx, node_ids)
        csr = topology.csr()
        root_idx = sorted({csr.index_of[r] for r in roots})
        assert_rows_match_scalar(
            csr, root_idx, csr.weights(weight), compile_failures(csr, failures)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 300),
        st.lists(st.integers(0, 24), min_size=1, max_size=6),
        st.lists(st.integers(0, 100), max_size=3),
        st.integers(2, 5),
    )
    def test_barriers_match_looped_scalar(self, seed, roots, link_idx, modulo):
        """Per-root barrier gags: each root may leave its own barrier."""
        topology = make_topology(seed)
        failures = random_failures(topology, link_idx, [])
        csr = topology.csr()
        barriers = [
            csr.index_of[n] for n in topology.nodes() if n % modulo == 0
        ]
        root_idx = sorted({csr.index_of[r] for r in roots})
        assert_rows_match_scalar(
            csr,
            root_idx,
            csr.weights("delay"),
            compile_failures(csr, failures),
            barriers=barriers,
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 300),
        st.lists(st.integers(0, 24), min_size=1, max_size=8),
        st.lists(st.integers(0, 100), max_size=3),
        st.lists(st.integers(0, 24), max_size=2),
        st.sampled_from(["delay", "cost"]),
    )
    def test_wrapper_views_identical_to_dijkstra(
        self, seed, roots, link_idx, node_ids, weight
    ):
        """dijkstra_multi views vs per-call dijkstra: values, insertion
        order, and dead-root semantics (a failed root yields the same
        empty result)."""
        topology = make_topology(seed)
        failures = random_failures(topology, link_idx, node_ids)
        batch = dijkstra_multi(topology, roots, weight=weight, failures=failures)
        for root in set(roots):
            got = batch.paths(root)
            want = dijkstra(topology, root, weight=weight, failures=failures)
            assert got.source == want.source
            assert got.dist == want.dist
            assert got.parent == want.parent
            assert list(got.dist) == list(want.dist)
            assert list(got.parent) == list(want.parent)

    def test_negative_id_tie_break_regression(self):
        # The historical ``u < (parent[v] or -1)`` bug pinned for the
        # batch kernel too: node -1 must replace incumbent parent 0 on an
        # equal-delay tie (smaller id wins, sentinel semantics aside).
        topo = Topology("neg")
        for n in (5, 0, -1, 9):
            topo.add_node(n)
        for u, v, d in [(5, 0, 1.0), (5, -1, 2.0), (0, 9, 2.0), (-1, 9, 1.0)]:
            topo.add_link(u, v, delay=d)
        batch = dijkstra_multi(topo, [5])
        want = dijkstra(topo, 5)
        got = batch.paths(5)
        assert got.parent[9] == -1
        assert got.dist == want.dist and got.parent == want.parent
        assert list(got.dist) == list(want.dist)


def build_tree(topo_seed: int, member_seed: int, use_smrp: bool):
    topology = waxman_topology(
        WaxmanConfig(n=30, alpha=0.5, beta=0.4, seed=topo_seed)
    ).topology
    import numpy as np

    rng = np.random.default_rng(member_seed)
    members = [int(m) for m in rng.choice(range(1, 30), size=8, replace=False)]
    if use_smrp:
        proto = SMRPProtocol(topology, 0, config=SMRPConfig(d_thresh=0.4))
        proto.build(members)
        return topology, proto.tree
    proto = SPFMulticastProtocol(topology, 0)
    return topology, proto.build(members)


tree_params = st.tuples(st.integers(0, 200), st.integers(0, 200), st.booleans())


class TestVectorizedShr:
    """Array SHR tables vs the dict/incremental reference — including
    dict insertion order, which callers' iteration observes."""

    @settings(max_examples=30, deadline=None)
    @given(tree_params)
    def test_shr_table_identical(self, params):
        _, tree = build_tree(*params)
        dict_table = shr_table(tree, vectorized=False)
        vec_table = shr_table(tree, vectorized=True)
        assert vec_table == dict_table
        assert list(vec_table) == list(dict_table)
        assert all(type(v) is int for v in vec_table.values())

    @settings(max_examples=30, deadline=None)
    @given(tree_params)
    def test_adjusted_shr_table_identical(self, params):
        _, tree = build_tree(*params)
        for mover in sorted(tree.on_tree_nodes()):
            if mover == tree.source:
                continue
            dict_table = adjusted_shr_table(tree, mover, vectorized=False)
            vec_table = adjusted_shr_table(tree, mover, vectorized=True)
            assert vec_table == dict_table
            assert list(vec_table) == list(dict_table)

    @settings(max_examples=30, deadline=None)
    @given(tree_params)
    def test_link_utilisation_identical(self, params):
        _, tree = build_tree(*params)
        assert link_utilisation(tree, vectorized=True) == link_utilisation(
            tree, vectorized=False
        )


class TestVectorizedCandidates:
    @settings(max_examples=30, deadline=None)
    @given(
        tree_params,
        st.integers(0, 29),
        st.lists(st.integers(0, 100), max_size=2),
    )
    def test_enumeration_identical(self, params, joiner, link_idx):
        topology, tree = build_tree(*params)
        if joiner in tree.on_tree_nodes():
            return
        failures = random_failures(topology, link_idx, [])
        shr_values = shr_table(tree)
        loop = enumerate_candidates(
            topology, tree, joiner, shr_values, failures=failures,
            vectorized=False,
        )
        vec = enumerate_candidates(
            topology, tree, joiner, shr_values, failures=failures,
            vectorized=True,
        )
        assert vec == loop  # dataclass equality: every field, every rank
        for got, want in zip(vec, loop):
            assert type(got.new_delay) is type(want.new_delay)
            assert type(got.total_delay) is type(want.total_delay)

    @settings(max_examples=20, deadline=None)
    @given(tree_params, st.integers(2, 6))
    def test_reshape_style_enumeration_identical(self, params, modulo):
        """Exercises mover exclusion + allowed_merge_nodes restriction."""
        topology, tree = build_tree(*params)
        movers = [m for m in sorted(tree.members) if m != tree.source]
        if not movers:
            return
        mover = movers[0]
        subtree = tree.subtree_nodes(mover)
        shr_values = adjusted_shr_table(tree, mover)
        allowed = frozenset(
            n for n in tree.on_tree_nodes() if n % modulo == 0
        )
        kwargs = dict(
            excluded_nodes=frozenset(subtree) - {mover},
            allowed_merge_nodes=allowed,
            mover=mover,
        )
        loop = enumerate_candidates(
            topology, tree, mover, shr_values, vectorized=False, **kwargs
        )
        vec = enumerate_candidates(
            topology, tree, mover, shr_values, vectorized=True, **kwargs
        )
        assert vec == loop
