"""Property tests for the routing substrate."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.routing.failure_view import FailureSet
from repro.routing.ksp import k_shortest_paths
from repro.routing.spf import dijkstra, dijkstra_with_barriers


def make_topology(seed: int, n: int = 25):
    return waxman_topology(
        WaxmanConfig(n=n, alpha=0.5, beta=0.4, seed=seed)
    ).topology


class TestDijkstraProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 200), st.integers(0, 24))
    def test_matches_networkx(self, seed, source):
        topology = make_topology(seed)
        ours = dijkstra(topology, source)
        reference = nx.single_source_dijkstra_path_length(
            topology.graph_view(), source, weight="delay"
        )
        assert set(ours.dist) == set(reference)
        for node, dist in reference.items():
            assert ours.dist[node] == pytest.approx(dist)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 200), st.integers(0, 24), st.integers(0, 24))
    def test_triangle_inequality(self, seed, a, b):
        topology = make_topology(seed)
        from_a = dijkstra(topology, a)
        from_b = dijkstra(topology, b)
        for node in topology.nodes():
            if node in from_a.dist and node in from_b.dist and b in from_a.dist:
                assert (
                    from_a.dist[node]
                    <= from_a.dist[b] + from_b.dist[node] + 1e-9
                )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 200), st.integers(0, 24), st.integers(0, 50))
    def test_failure_masking_monotone(self, seed, source, failure_index):
        """Removing a link never shortens any distance."""
        topology = make_topology(seed)
        links = topology.links()
        link = links[failure_index % len(links)]
        before = dijkstra(topology, source)
        after = dijkstra(
            topology, source, failures=FailureSet.links((link.u, link.v))
        )
        for node, dist in after.dist.items():
            assert dist >= before.dist[node] - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 200), st.integers(0, 24))
    def test_paths_never_cross_barriers(self, seed, source):
        topology = make_topology(seed)
        barriers = {n for n in topology.nodes() if n % 3 == 0 and n != source}
        result = dijkstra_with_barriers(topology, source, barriers=barriers)
        for node in result.dist:
            path = result.path_to(node)
            assert all(p not in barriers for p in path[:-1] if p != source)


class TestKspProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100), st.integers(1, 24), st.integers(2, 5))
    def test_sorted_loopless_distinct(self, seed, target, k):
        topology = make_topology(seed)
        paths = k_shortest_paths(topology, 0, target, k=k)
        lengths = [topology.path_delay(p) for p in paths]
        assert lengths == sorted(lengths)
        assert len({tuple(p) for p in paths}) == len(paths)
        for path in paths:
            assert len(path) == len(set(path))
            assert path[0] == 0 and path[-1] == target
