"""Tests for the message-level PIM-over-OSPF baseline (LSA + rejoin)."""

import pytest

from repro.graph.generators import figure1_topology, node_id
from repro.multicast.validation import check_tree_invariants
from repro.sim.failures import FailureSchedule
from repro.sim.protocols import SmrpSimulation
from repro.sim.rejoin import RejoinSimNode, SpfRejoinSimulation


def build_fig1_baseline():
    topo = figure1_topology()
    sim = SpfRejoinSimulation(topo, node_id("S"))
    sim.schedule_join(10.0, node_id("C"))
    sim.schedule_join(20.0, node_id("D"))
    return topo, sim


class TestLsaFlooding:
    def test_every_router_learns_the_failure(self):
        topo, sim = build_fig1_baseline()
        FailureSchedule().fail_link_at(100.0, node_id("A"), node_id("D")).arm(
            sim.sim, sim.network
        )
        sim.run(until=400.0)
        for node_id_, node in sim.nodes.items():
            assert isinstance(node, RejoinSimNode)
            assert node.lsdb.known_failures.link_failed(
                node_id("A"), node_id("D")
            ), f"router {node_id_} never converged"

    def test_lsa_arrival_order_respects_distance(self):
        topo, sim = build_fig1_baseline()
        FailureSchedule().fail_link_at(100.0, node_id("A"), node_id("D")).arm(
            sim.sim, sim.network
        )
        sim.run(until=400.0)
        # D originates; its direct neighbors hear before the far side.
        arrivals = sim.lsa_arrivals
        assert arrivals[node_id("B")] <= arrivals[node_id("S")] + 2.0

    def test_no_failure_no_lsas(self):
        _, sim = build_fig1_baseline()
        sim.run(until=300.0)
        assert sim.network.stats.by_kind.get("Lsa", 0) == 0


class TestRejoin:
    def test_service_restored_via_reconverged_path(self):
        topo, sim = build_fig1_baseline()
        FailureSchedule().fail_link_at(100.0, node_id("A"), node_id("D")).arm(
            sim.sim, sim.network
        )
        sim.run(until=500.0)
        tree = sim.extract_tree()
        assert tree.is_member(node_id("D"))
        # D's new path is the re-converged SPF route via B (Figure 1b).
        assert tree.path_from_source(node_id("D")) == [
            node_id("S"),
            node_id("B"),
            node_id("D"),
        ]
        check_tree_invariants(tree)

    def test_restoration_recorded(self):
        topo, sim = build_fig1_baseline()
        FailureSchedule().fail_link_at(100.0, node_id("A"), node_id("D")).arm(
            sim.sim, sim.network
        )
        sim.run(until=500.0)
        restored = [r for r in sim.recovery_records if r.restored_at is not None]
        assert restored
        assert all(r.restoration_latency > 0 for r in restored)

    def test_unaffected_member_undisturbed(self):
        topo, sim = build_fig1_baseline()
        FailureSchedule().fail_link_at(100.0, node_id("A"), node_id("D")).arm(
            sim.sim, sim.network
        )
        sim.run(until=500.0)
        tree = sim.extract_tree()
        assert tree.path_from_source(node_id("C")) == [
            node_id("S"),
            node_id("A"),
            node_id("C"),
        ]

    def test_rejoin_slower_than_local_detour(self, waxman50):
        """The paper's headline, measured in simulated time: the baseline
        waits for flooding + consistent tables; SMRP's local detour does
        not."""
        members = [7, 19, 28, 35]
        results = {}
        for name, sim_cls, kwargs in (
            ("baseline", SpfRejoinSimulation, {}),
            ("smrp", SmrpSimulation, {"d_thresh": 0.3}),
        ):
            sim = sim_cls(waxman50, 0, **kwargs)
            spacing = 50.0 * max(l.delay for l in waxman50.links())
            for i, m in enumerate(members):
                sim.schedule_join(spacing * (i + 1), m)
            settle = spacing * (len(members) + 2)
            sim.run(until=settle)
            tree = sim.extract_tree()
            victim_path = tree.path_from_source(members[0])
            FailureSchedule().fail_link_at(
                settle + 1.0, victim_path[0], victim_path[1]
            ).arm(sim.sim, sim.network)
            sim.run(until=settle + 100 * spacing)
            restored = [
                r.restoration_latency
                for r in sim.recovery_records
                if r.restored_at is not None
            ]
            if not restored:
                pytest.skip(f"{name}: failure not recoverable in this layout")
            results[name] = min(restored)
        assert results["smrp"] < results["baseline"]
