"""Tests for Condition-II reshaping in the message-level simulator."""

import pytest

from repro.graph.generators import node_id
from repro.multicast.validation import check_tree_invariants
from repro.sim.protocols import SmrpSimulation


class TestDesReshaping:
    def test_figure5_reshape_over_messages(self, fig4):
        """The Figure 5 switch emerges from the timer-driven re-selection:
        after E, G, F join, E moves from under D to the A-C branch."""
        sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3)
        for i, m in enumerate(("E", "G", "F")):
            sim.schedule_join(20.0 + 30.0 * i, node_id(m))
        sim.run(until=150.0)
        assert sim.extract_tree().parent(node_id("E")) == node_id("D")

        sim.enable_reshaping(period=40.0)
        sim.run(until=400.0)
        tree = sim.extract_tree()
        assert sim.reshapes_performed >= 1
        assert tree.parent(node_id("E")) == node_id("C")
        assert tree.parent(node_id("C")) == node_id("A")
        check_tree_invariants(tree)

    def test_old_branch_cleaned_after_switch(self, fig4):
        sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3)
        for i, m in enumerate(("E", "G", "F")):
            sim.schedule_join(20.0 + 30.0 * i, node_id(m))
        sim.enable_reshaping(period=40.0)
        sim.run(until=500.0)
        tree = sim.extract_tree()
        # D keeps serving F but must no longer list E downstream.
        d_node = sim.nodes[node_id("D")]
        assert node_id("E") not in d_node.downstream
        assert tree.is_member(node_id("F"))
        check_tree_invariants(tree)

    def test_reshaping_settles(self, fig4):
        """No oscillation: after the first switch the tree is stable."""
        sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3)
        for i, m in enumerate(("E", "G", "F")):
            sim.schedule_join(20.0 + 30.0 * i, node_id(m))
        sim.enable_reshaping(period=40.0)
        sim.run(until=400.0)
        count_after_settling = sim.reshapes_performed
        links = sim.extract_tree().tree_links()
        sim.run(until=1200.0)
        assert sim.reshapes_performed == count_after_settling
        assert sim.extract_tree().tree_links() == links

    def test_members_stay_served_throughout(self, waxman50):
        sim = SmrpSimulation(waxman50, 0, d_thresh=0.4)
        members = [7, 19, 28, 35, 42]
        spacing = 50.0 * max(l.delay for l in waxman50.links())
        for i, m in enumerate(members):
            sim.schedule_join(spacing * (i + 1), m)
        sim.enable_reshaping(period=4 * spacing)
        sim.run(until=spacing * 30)
        tree = sim.extract_tree()
        assert tree.members == frozenset(members)
        check_tree_invariants(tree)
