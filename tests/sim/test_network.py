"""Tests for the simulated network (delivery, delays, failures)."""

import pytest

from repro.errors import SimulationError, TopologyError
from repro.sim.engine import Simulator
from repro.sim.messages import Refresh
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode


class Sink(SimNode):
    """A node that records every Refresh it receives."""

    def __init__(self, node_id, network):
        super().__init__(node_id, network)
        self.inbox = []
        self.on(Refresh, lambda m: self.inbox.append((self.sim.now, m)))


@pytest.fixture
def net(line4):
    sim = Simulator()
    network = SimNetwork(sim, line4)
    nodes = {n: Sink(n, network) for n in line4.nodes()}
    return sim, network, nodes


class TestDelivery:
    def test_message_arrives_after_link_delay(self, net):
        sim, network, nodes = net
        nodes[0].send(Refresh(hop_src=0, hop_dst=1))
        sim.run()
        assert len(nodes[1].inbox) == 1
        arrival, _ = nodes[1].inbox[0]
        assert arrival == 1.0  # line topology delay

    def test_stats_track_kinds(self, net):
        sim, network, nodes = net
        nodes[0].send(Refresh(hop_src=0, hop_dst=1))
        sim.run()
        assert network.stats.sent == 1
        assert network.stats.delivered == 1
        assert network.stats.by_kind == {"Refresh": 1}

    def test_send_requires_matching_source(self, net):
        _, __, nodes = net
        with pytest.raises(SimulationError):
            nodes[0].send(Refresh(hop_src=1, hop_dst=2))

    def test_transmit_requires_link(self, net):
        sim, network, nodes = net
        with pytest.raises(TopologyError):
            nodes[0].send(Refresh(hop_src=0, hop_dst=3))  # 0-3 not adjacent

    def test_unhandled_message_type_raises(self, line4):
        from repro.sim.messages import Prune

        sim = Simulator()
        network = SimNetwork(sim, line4)
        nodes = {n: Sink(n, network) for n in line4.nodes()}
        nodes[0].send(Prune(hop_src=0, hop_dst=1, pruned=0))
        with pytest.raises(SimulationError):
            sim.run()


class TestFailures:
    def test_failed_link_loses_messages(self, net):
        sim, network, nodes = net
        network.fail_link(0, 1)
        nodes[0].send(Refresh(hop_src=0, hop_dst=1))
        sim.run()
        assert nodes[1].inbox == []
        assert network.stats.lost_link_failed == 1

    def test_in_flight_message_lost_when_link_fails(self, net):
        sim, network, nodes = net
        nodes[0].send(Refresh(hop_src=0, hop_dst=1))  # arrives at t=1
        sim.schedule(0.5, lambda: network.fail_link(0, 1))
        sim.run()
        assert nodes[1].inbox == []

    def test_failed_node_neither_sends_nor_receives(self, net):
        sim, network, nodes = net
        network.fail_node(1)
        nodes[0].send(Refresh(hop_src=0, hop_dst=1))
        nodes[1].send(Refresh(hop_src=1, hop_dst=2))
        sim.run()
        assert nodes[1].inbox == []
        assert nodes[2].inbox == []
        assert network.stats.lost_node_failed == 2

    def test_dead_receiver_ignores_delivery(self, net):
        sim, network, nodes = net
        nodes[0].send(Refresh(hop_src=0, hop_dst=1))
        sim.schedule(0.5, lambda: network.fail_node(1))
        sim.run()
        assert nodes[1].inbox == []

    def test_repair_all(self, net):
        sim, network, nodes = net
        network.fail_link(0, 1)
        network.repair_all()
        assert network.current_failures.is_empty
        nodes[0].send(Refresh(hop_src=0, hop_dst=1))
        sim.run()
        assert len(nodes[1].inbox) == 1

    def test_fail_unknown_component_rejected(self, net):
        _, network, __ = net
        with pytest.raises(TopologyError):
            network.fail_link(0, 3)
        with pytest.raises(TopologyError):
            network.fail_node(99)


class TestRegistration:
    def test_duplicate_registration_rejected(self, line4):
        sim = Simulator()
        network = SimNetwork(sim, line4)
        Sink(0, network)
        with pytest.raises(SimulationError):
            Sink(0, network)

    def test_unknown_node_rejected(self, line4):
        network = SimNetwork(Simulator(), line4)
        with pytest.raises(TopologyError):
            Sink(99, network)

    def test_node_lookup(self, net):
        _, network, nodes = net
        assert network.node(2) is nodes[2]
        with pytest.raises(SimulationError):
            network.node(77)
