"""Tests for periodic and watchdog timers."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import PeriodicTimer, WatchdogTimer


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not timer.running

    def test_double_start_is_idempotent(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        timer.start()
        sim.run(until=1.5)
        assert ticks == [1.0]

    def test_callback_can_stop_timer(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                timer.stop()

        timer = PeriodicTimer(sim, 1.0, tick)
        timer.start()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_bad_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)


class TestWatchdogTimer:
    def test_fires_without_kicks(self):
        sim = Simulator()
        expirations = []
        dog = WatchdogTimer(sim, 5.0, lambda: expirations.append(sim.now))
        dog.kick()
        sim.run(until=20.0)
        assert expirations == [5.0]

    def test_kicks_postpone_expiry(self):
        sim = Simulator()
        expirations = []
        dog = WatchdogTimer(sim, 5.0, lambda: expirations.append(sim.now))
        dog.kick()
        for t in (2.0, 4.0, 6.0):
            sim.schedule_at(t, dog.kick)
        sim.run(until=20.0)
        assert expirations == [11.0]  # last kick at 6.0 + timeout 5.0

    def test_disarm_prevents_expiry(self):
        sim = Simulator()
        expirations = []
        dog = WatchdogTimer(sim, 5.0, lambda: expirations.append(sim.now))
        dog.kick()
        sim.schedule_at(1.0, dog.disarm)
        sim.run(until=20.0)
        assert expirations == []
        assert not dog.armed

    def test_bad_timeout_rejected(self):
        with pytest.raises(SimulationError):
            WatchdogTimer(Simulator(), -1.0, lambda: None)
