"""Tests for the message-level SMRP and SPF simulations."""

import pytest

from repro.graph.generators import node_id
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.shr import shr_table
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.multicast.validation import check_tree_invariants
from repro.sim.failures import FailureSchedule
from repro.sim.protocols import SimTimers, SmrpSimulation, SpfSimulation


class TestSmrpJoins:
    def test_figure4_tree_matches_graph_engine(self, fig4):
        sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3)
        for i, m in enumerate(("E", "G", "F")):
            sim.schedule_join(10.0 + 20.0 * i, node_id(m))
        sim.run(until=120.0)
        des_tree = sim.extract_tree()

        proto = SMRPProtocol(
            fig4, node_id("S"), config=SMRPConfig(d_thresh=0.3, reshape_enabled=False)
        )
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        assert des_tree.tree_links() == proto.tree.tree_links()
        assert des_tree.members == proto.tree.members

    def test_join_latency_is_round_trip(self, fig4):
        sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3)
        sim.schedule_join(10.0, node_id("E"))
        sim.run(until=60.0)
        record = sim.join_records[node_id("E")]
        # Join_Req out (delay 3) + JoinAck back (delay 3).
        assert record.latency == pytest.approx(6.0)

    def test_shr_converges_to_ground_truth(self, fig4):
        sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3)
        for i, m in enumerate(("E", "G", "F")):
            sim.schedule_join(10.0 + 20.0 * i, node_id(m))
        sim.run(until=200.0)  # plenty of advert periods
        tree = sim.extract_tree()
        truth = shr_table(tree)
        view = sim.shr_view()
        for node, value in truth.items():
            assert view[node] == value, f"node {node} advertises stale SHR"

    def test_tree_invariants_hold(self, waxman50):
        sim = SmrpSimulation(waxman50, 0, d_thresh=0.3)
        for i, m in enumerate([7, 19, 28, 35, 42]):
            sim.schedule_join(5.0 * (i + 1), m)
        sim.run(until=400.0)
        check_tree_invariants(sim.extract_tree())


class TestSpfBaselineSim:
    def test_matches_graph_baseline(self, waxman50):
        members = [7, 19, 28, 35, 42]
        sim = SpfSimulation(waxman50, 0)
        for i, m in enumerate(members):
            sim.schedule_join(5.0 * (i + 1), m)
        sim.run(until=400.0)
        reference = SPFMulticastProtocol(waxman50, 0).build(members)
        assert sim.extract_tree().tree_links() == reference.tree_links()


class TestLeaves:
    def test_leave_cleans_state(self, fig4):
        sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3)
        sim.schedule_join(10.0, node_id("E"))
        sim.schedule_leave(50.0, node_id("E"))
        sim.run(until=100.0)
        tree = sim.extract_tree()
        assert not tree.members
        assert tree.on_tree_nodes() == [node_id("S")]

    def test_leave_keeps_shared_branch(self, fig4):
        sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3)
        sim.schedule_join(10.0, node_id("E"))
        sim.schedule_join(30.0, node_id("F"))
        sim.schedule_leave(60.0, node_id("E"))
        sim.run(until=120.0)
        tree = sim.extract_tree()
        assert tree.is_member(node_id("F"))
        assert not tree.is_member(node_id("E"))


class TestFailureRecovery:
    def test_local_detour_restores_service(self, fig1):
        """Figure 1: D recovers from the A-D cut through C."""
        S = node_id("S")
        sim = SmrpSimulation(fig1, S, d_thresh=0.0)  # force SPF-like tree
        sim.schedule_join(10.0, node_id("C"))
        sim.schedule_join(20.0, node_id("D"))
        FailureSchedule().fail_link_at(100.0, node_id("A"), node_id("D")).arm(
            sim.sim, sim.network
        )
        sim.run(until=300.0)
        assert sim.recovery_records, "failure never detected"
        record = sim.recovery_records[0]
        assert record.detector == node_id("D")
        assert record.restored_at is not None
        assert record.restoration_latency > 0
        tree = sim.extract_tree()
        assert tree.is_member(node_id("D"))
        check_tree_invariants(tree)

    def test_detection_latency_bounded_by_timeout(self, fig1):
        timers = SimTimers(failure_detection_timeout=12.0, advert_period=5.0)
        sim = SmrpSimulation(fig1, node_id("S"), d_thresh=0.0, timers=timers)
        sim.schedule_join(10.0, node_id("C"))
        sim.schedule_join(20.0, node_id("D"))
        FailureSchedule().fail_link_at(100.0, node_id("A"), node_id("D")).arm(
            sim.sim, sim.network
        )
        sim.run(until=300.0)
        record = sim.recovery_records[0]
        # Detection happens within timeout + one advert period of failure.
        assert record.detected_at <= 100.0 + 12.0 + 5.0 + 1e-9

    def test_cascaded_recovery_when_root_is_trapped(self, fig1):
        """When the detached root (B) has no detour, its child D recovers."""
        sim = SmrpSimulation(fig1, node_id("S"), d_thresh=0.5)
        sim.schedule_join(10.0, node_id("C"))
        sim.schedule_join(30.0, node_id("D"))  # via B (disjoint min-SHR path)
        tree_before = sim_run_until(sim, 60.0)
        if tree_before.parent(node_id("D")) != node_id("B"):
            pytest.skip("layout changed; cascade scenario not formed")
        FailureSchedule().fail_link_at(100.0, node_id("S"), node_id("B")).arm(
            sim.sim, sim.network
        )
        sim.run(until=400.0)
        detectors = [r.detector for r in sim.recovery_records]
        assert node_id("B") in detectors  # tried and failed
        assert node_id("D") in detectors  # cascaded and succeeded
        tree = sim.extract_tree()
        assert tree.is_member(node_id("D"))
        # B's dead state eventually evaporates via soft-state expiry.
        assert not tree.is_on_tree(node_id("B"))

    def test_node_failure_recovery(self, grid5):
        """Members below a crashed relay re-attach around it."""
        sim = SmrpSimulation(grid5, 0, d_thresh=0.5)
        sim.schedule_join(10.0, 12)
        sim.schedule_join(20.0, 24)
        sim.run(until=60.0)
        tree = sim.extract_tree()
        relay = tree.path_from_source(24)[1]
        FailureSchedule().fail_node_at(100.0, relay).arm(sim.sim, sim.network)
        sim.run(until=500.0)
        final = sim.extract_tree()
        assert final.is_member(24)
        assert not final.is_on_tree(relay)


def sim_run_until(sim, until):
    sim.run(until=until)
    return sim.extract_tree()


class TestMessageEconomy:
    def test_control_messages_bounded(self, fig4):
        """Steady state: refresh + advert traffic only, linear in tree size."""
        sim = SmrpSimulation(fig4, node_id("S"), d_thresh=0.3)
        for i, m in enumerate(("E", "G", "F")):
            sim.schedule_join(10.0 + 10.0 * i, m_id := node_id(m))
        sim.run(until=100.0)
        sent_100 = sim.network.stats.sent
        sim.run(until=200.0)
        sent_200 = sim.network.stats.sent
        on_tree = len(sim.extract_tree().on_tree_nodes())
        per_period = (sent_200 - sent_100) / (100.0 / 5.0)
        # Each on-tree node sends at most one refresh and one advert per
        # child per period.
        assert per_period <= 3 * on_tree
