"""Tests for the simulated data plane (packet delivery and disruption)."""

import pytest

from repro.graph.generators import figure1_topology, node_id
from repro.sim.failures import FailureSchedule
from repro.sim.protocols import SmrpSimulation
from repro.sim.rejoin import SpfRejoinSimulation


def fig1_session(d_thresh=0.0):
    topo = figure1_topology()
    sim = SmrpSimulation(topo, node_id("S"), d_thresh=d_thresh)
    sim.schedule_join(10.0, node_id("C"))
    sim.schedule_join(20.0, node_id("D"))
    sim.start_data(period=2.0)
    return sim


class TestDelivery:
    def test_members_receive_continuously(self):
        sim = fig1_session()
        sim.run(until=200.0)
        for member in (node_id("C"), node_id("D")):
            log = sim.deliveries.get(member, [])
            assert len(log) > 50
            seqs = [s for s, _ in log]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)  # no duplicates

    def test_no_gaps_without_failures(self):
        sim = fig1_session()
        sim.run(until=200.0)
        for member in (node_id("C"), node_id("D")):
            missing, duration = sim.disruption(member)
            assert missing == 0
            assert duration == 0.0

    def test_non_members_receive_nothing(self):
        sim = fig1_session()
        sim.run(until=100.0)
        assert node_id("B") not in sim.deliveries

    def test_late_joiner_starts_at_join(self):
        topo = figure1_topology()
        sim = SmrpSimulation(topo, node_id("S"), d_thresh=0.0)
        sim.start_data(period=2.0)
        sim.schedule_join(100.0, node_id("C"))
        sim.run(until=160.0)
        log = sim.deliveries[node_id("C")]
        assert log
        first_seq, first_time = log[0]
        assert first_time >= 100.0
        assert first_seq > 40  # the stream was already running


class TestDisruption:
    def test_failure_causes_bounded_gap(self):
        sim = fig1_session()
        FailureSchedule().fail_link_at(100.0, node_id("A"), node_id("D")).arm(
            sim.sim, sim.network
        )
        sim.run(until=400.0)
        missing, duration = sim.disruption(node_id("D"))
        assert missing > 0, "the failure must interrupt the stream"
        # Service resumed: packets arrive after the recovery completed.
        last_seq, last_time = sim.deliveries[node_id("D")][-1]
        assert last_time > 150.0
        # The gap is consistent with the measured restoration latency.
        record = next(r for r in sim.recovery_records if r.restored_at)
        assert duration == pytest.approx(
            record.restoration_latency, abs=3 * 2.0 + 10.0
        )

    def test_unaffected_member_sees_no_gap(self):
        sim = fig1_session()
        FailureSchedule().fail_link_at(100.0, node_id("A"), node_id("D")).arm(
            sim.sim, sim.network
        )
        sim.run(until=400.0)
        missing, _ = sim.disruption(node_id("C"))
        assert missing == 0

    def test_smrp_gap_no_worse_than_baseline(self):
        """The user-visible claim: fewer packets lost with local detours."""
        gaps = {}
        for name, sim_cls, kwargs in (
            ("smrp", SmrpSimulation, {"d_thresh": 0.0}),
            ("baseline", SpfRejoinSimulation, {}),
        ):
            topo = figure1_topology()
            sim = sim_cls(topo, node_id("S"), **kwargs)
            sim.schedule_join(10.0, node_id("C"))
            sim.schedule_join(20.0, node_id("D"))
            sim.start_data(period=2.0)
            FailureSchedule().fail_link_at(
                100.0, node_id("A"), node_id("D")
            ).arm(sim.sim, sim.network)
            sim.run(until=600.0)
            missing, _ = sim.disruption(node_id("D"))
            assert missing > 0
            gaps[name] = missing
        assert gaps["smrp"] <= gaps["baseline"]
