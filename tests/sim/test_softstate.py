"""Tests for soft-state tables."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.softstate import SoftStateTable


@pytest.fixture
def table():
    sim = Simulator()
    expired = []
    table = SoftStateTable(sim, lifetime=10.0, on_expire=expired.append)
    return sim, table, expired


class TestRefresh:
    def test_creates_and_renews(self, table):
        sim, tbl, _ = table
        tbl.refresh(5, subtree_members=2)
        assert 5 in tbl
        assert tbl.entry(5).subtree_members == 2
        sim.run(until=8.0)
        tbl.refresh(5, subtree_members=3)
        assert tbl.entry(5).expires_at == 18.0

    def test_total_subtree_members(self, table):
        _, tbl, __ = table
        tbl.refresh(1, subtree_members=2)
        tbl.refresh(2, subtree_members=3)
        assert tbl.total_subtree_members() == 5

    def test_neighbors_sorted(self, table):
        _, tbl, __ = table
        tbl.refresh(9)
        tbl.refresh(3)
        assert tbl.neighbors() == [3, 9]

    def test_remove(self, table):
        _, tbl, __ = table
        tbl.refresh(4)
        tbl.remove(4)
        assert 4 not in tbl
        tbl.remove(4)  # idempotent


class TestExpiry:
    def test_expires_after_lifetime(self, table):
        sim, tbl, expired = table
        tbl.refresh(7)
        sim.run(until=10.0)
        reaped = tbl.expire()
        assert [e.neighbor for e in reaped] == [7]
        assert [e.neighbor for e in expired] == [7]
        assert len(tbl) == 0

    def test_refresh_prevents_expiry(self, table):
        sim, tbl, expired = table
        tbl.refresh(7)
        sim.run(until=9.0)
        tbl.refresh(7)
        sim.run(until=12.0)
        assert tbl.expire() == []
        assert expired == []

    def test_partial_expiry(self, table):
        sim, tbl, _ = table
        tbl.refresh(1)
        sim.run(until=6.0)
        tbl.refresh(2)
        sim.run(until=11.0)
        reaped = tbl.expire()
        assert [e.neighbor for e in reaped] == [1]
        assert 2 in tbl

    def test_bad_lifetime_rejected(self):
        with pytest.raises(SimulationError):
            SoftStateTable(Simulator(), lifetime=0.0, on_expire=lambda e: None)
