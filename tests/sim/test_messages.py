"""Tests for the control-message vocabulary."""

from repro.sim.messages import (
    HopByHopAck,
    HopByHopJoin,
    JoinAck,
    JoinReq,
    LeaveReq,
    Lsa,
    Message,
    Prune,
    Refresh,
    ShrAdvert,
    ShrQuery,
    ShrResponse,
)


class TestMessageBasics:
    def test_unique_ids(self):
        a = Refresh(hop_src=0, hop_dst=1)
        b = Refresh(hop_src=0, hop_dst=1)
        assert a.msg_id != b.msg_id

    def test_kind_is_class_name(self):
        assert JoinReq(hop_src=0, hop_dst=1).kind == "JoinReq"
        assert Lsa(hop_src=0, hop_dst=1).kind == "Lsa"

    def test_messages_are_frozen(self):
        msg = Refresh(hop_src=0, hop_dst=1)
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            msg.hop_src = 5  # type: ignore[misc]

    def test_all_types_are_messages(self):
        for cls in (
            JoinReq, JoinAck, LeaveReq, Refresh, ShrAdvert, ShrQuery,
            ShrResponse, Prune, Lsa, HopByHopJoin, HopByHopAck,
        ):
            assert issubclass(cls, Message)


class TestPayloads:
    def test_join_req_path(self):
        msg = JoinReq(hop_src=5, hop_dst=4, joiner=5, path=(5, 4, 0))
        assert msg.path == (5, 4, 0)
        assert msg.member

    def test_hop_by_hop_trail(self):
        msg = HopByHopJoin(hop_src=5, hop_dst=4, joiner=5, target=0,
                           visited=(5,))
        assert msg.visited == (5,)
        ack = HopByHopAck(hop_src=0, hop_dst=4, joiner=5, merge_node=0,
                          trail=(5, 4, 0))
        assert ack.trail[-1] == 0

    def test_refresh_carries_subtree_count(self):
        assert Refresh(hop_src=1, hop_dst=0, subtree_members=3).subtree_members == 3

    def test_advert_carries_shr(self):
        assert ShrAdvert(hop_src=0, hop_dst=1, shr_upstream=4).shr_upstream == 4

    def test_lsa_names_link(self):
        msg = Lsa(hop_src=2, hop_dst=3, failed_u=0, failed_v=1)
        assert (msg.failed_u, msg.failed_v) == (0, 1)
