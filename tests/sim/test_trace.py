"""Trace filtering (keywords + predicates) and bounded-trace semantics."""

import pytest

from repro.sim.trace import Trace, TraceRecord


def _populated() -> Trace:
    t = Trace()
    t.record(1.0, "send", 0, "JoinReq", "to 1")
    t.record(2.0, "send", 1, "JoinAck", "to 0")
    t.record(3.0, "join", 2, "request")
    t.record(4.0, "send", 0, "JoinReq", "to 2")
    return t


class TestFiltering:
    def test_keyword_filters_still_work(self):
        t = _populated()
        assert len(list(t.filter(category="send"))) == 3
        assert len(list(t.filter(category="send", node=0))) == 2
        assert t.first(category="join").event == "request"
        assert t.first(category="nope") is None

    def test_positional_category_string(self):
        t = _populated()
        # Historical call style: first positional arg is the category.
        assert len(list(t.filter("send"))) == 3
        assert t.first("join").node == 2

    def test_predicate_callable(self):
        t = _populated()
        late = list(t.filter(lambda r: r.time > 1.5))
        assert [r.time for r in late] == [2.0, 3.0, 4.0]

    def test_predicate_combines_with_keywords(self):
        t = _populated()
        got = list(t.filter(lambda r: r.time < 2.5, category="send"))
        assert [r.event for r in got] == ["JoinReq", "JoinAck"]

    def test_positional_and_keyword_category_conflict(self):
        with pytest.raises(TypeError):
            list(_populated().filter("send", category="join"))

    def test_count(self):
        t = _populated()
        assert t.count() == 4
        assert t.count("send") == 3
        assert t.count("send", event="JoinReq") == 2
        assert t.count(lambda r: r.node == 0) == 2


class TestBounded:
    def test_drop_oldest_and_counter(self):
        t = Trace(max_records=3)
        for i in range(5):
            t.record(float(i), "c", i, "e")
        assert len(t) == 3
        assert t.dropped == 2
        assert [r.node for r in t.records] == [2, 3, 4]

    def test_unbounded_by_default(self):
        t = Trace()
        for i in range(10):
            t.record(float(i), "c", i, "e")
        assert len(t) == 10
        assert t.dropped == 0

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Trace(max_records=0)

    def test_accepts_prepopulated_list(self):
        records = [TraceRecord(1.0, "c", 0, "e")]
        t = Trace(records=records, max_records=2)
        t.record(2.0, "c", 1, "e")
        t.record(3.0, "c", 2, "e")
        assert t.dropped == 1
        assert [r.node for r in t.records] == [1, 2]

    def test_disabled_trace_never_drops(self):
        t = Trace(enabled=False, max_records=1)
        t.record(1.0, "c", 0, "e")
        t.record(2.0, "c", 1, "e")
        assert len(t) == 0
        assert t.dropped == 0


class TestMergeFrom:
    """Drop accounting must SUM across worker merges, not last-write-win."""

    def _bounded_worker(self, cap: int, n: int, node_base: int) -> Trace:
        t = Trace(max_records=cap)
        for i in range(n):
            t.record(float(i), "c", node_base + i, "e")
        return t

    def test_dropped_counts_sum_across_workers(self):
        parent = Trace()
        parent.merge_from(self._bounded_worker(cap=2, n=5, node_base=0))
        parent.merge_from(self._bounded_worker(cap=2, n=4, node_base=10))
        # worker 1 dropped 3, worker 2 dropped 2; the historical
        # last-write-win merge reported 2 here.
        assert parent.dropped == 5
        assert len(parent) == 4

    def test_merge_overflow_counts_against_parent_bound(self):
        parent = Trace(max_records=3)
        parent.record(0.0, "c", 0, "e")
        worker = self._bounded_worker(cap=4, n=4, node_base=10)
        parent.merge_from(worker)
        assert len(parent) == 3
        # 0 from the worker's own losses + 2 forced out by the parent cap.
        assert parent.dropped == 2

    def test_merge_sums_own_and_incoming_drops(self):
        parent = Trace(max_records=2)
        for i in range(3):
            parent.record(float(i), "c", i, "e")
        assert parent.dropped == 1
        worker = self._bounded_worker(cap=1, n=3, node_base=10)
        assert worker.dropped == 2
        parent.merge_from(worker)
        # 1 (parent's own) + 2 (worker's) + 1 (overflow during merge).
        assert parent.dropped == 4
        assert len(parent) == 2

    def test_merge_preserves_record_order(self):
        parent = Trace()
        parent.record(1.0, "c", 0, "e")
        worker = Trace()
        worker.record(2.0, "c", 1, "e")
        worker.record(3.0, "c", 2, "e")
        parent.merge_from(worker)
        assert [r.node for r in parent.records] == [0, 1, 2]


class TestDump:
    def test_dump_limit_on_bounded_trace(self):
        t = Trace(max_records=5)
        for i in range(5):
            t.record(float(i), "c", i, "e")
        assert len(t.dump(limit=2).splitlines()) == 2
        assert len(t.dump().splitlines()) == 5
