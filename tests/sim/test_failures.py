"""Tests for failure schedules and tracing."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.failures import FailureSchedule
from repro.sim.network import SimNetwork
from repro.sim.trace import Trace


class TestFailureSchedule:
    def test_link_failure_applies_at_time(self, line4):
        sim = Simulator()
        trace = Trace()
        network = SimNetwork(sim, line4, trace=trace)
        FailureSchedule().fail_link_at(5.0, 1, 2).arm(sim, network)
        sim.run(until=4.0)
        assert network.link_usable(1, 2)
        sim.run(until=6.0)
        assert not network.link_usable(1, 2)
        assert trace.first(category="failure", event="link_failed") is not None

    def test_node_failure_applies_at_time(self, line4):
        sim = Simulator()
        network = SimNetwork(sim, line4)
        FailureSchedule().fail_node_at(3.0, 2).arm(sim, network)
        sim.run(until=10.0)
        assert not network.node_alive(2)

    def test_multiple_failures(self, line4):
        sim = Simulator()
        network = SimNetwork(sim, line4)
        schedule = (
            FailureSchedule()
            .fail_link_at(1.0, 0, 1)
            .fail_link_at(2.0, 2, 3)
            .fail_node_at(3.0, 2)
        )
        schedule.arm(sim, network)
        sim.run(until=10.0)
        failures = network.current_failures
        assert failures.link_failed(0, 1)
        assert failures.link_failed(2, 3)
        assert failures.node_failed(2)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule().fail_link_at(-1.0, 0, 1)
        with pytest.raises(ConfigurationError):
            FailureSchedule().fail_node_at(-1.0, 0)

    def test_is_empty(self):
        assert FailureSchedule().is_empty
        assert not FailureSchedule().fail_node_at(1.0, 0).is_empty

    def test_arming_twice_injects_once(self, line4):
        # A schedule armed twice on the same simulator must not schedule
        # its failures twice (double trace records, double obs counts).
        sim = Simulator()
        trace = Trace()
        network = SimNetwork(sim, line4, trace=trace)
        schedule = FailureSchedule().fail_link_at(5.0, 1, 2)
        schedule.arm(sim, network)
        schedule.arm(sim, network)  # idempotent no-op
        sim.run(until=10.0)
        records = list(trace.filter(category="failure", event="link_failed"))
        assert len(records) == 1
        assert not network.link_usable(1, 2)

    def test_same_schedule_arms_on_distinct_simulators(self, line4):
        # Idempotency is per simulator: the same schedule may drive two
        # independent runs.
        schedule = FailureSchedule().fail_link_at(5.0, 1, 2)
        for _ in range(2):
            sim = Simulator()
            network = SimNetwork(sim, line4)
            schedule.arm(sim, network)
            sim.run(until=10.0)
            assert not network.link_usable(1, 2)


class TestTrace:
    def test_filter_and_first(self):
        trace = Trace()
        trace.record(1.0, "join", 5, "request")
        trace.record(2.0, "join", 6, "ack")
        trace.record(3.0, "failure", 5, "detected")
        assert len(list(trace.filter(category="join"))) == 2
        assert trace.first(node=5, category="failure").event == "detected"
        assert trace.first(category="leave") is None

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(1.0, "join", 5, "request")
        assert len(trace) == 0

    def test_dump_renders_lines(self):
        trace = Trace()
        trace.record(1.0, "join", 5, "request", detail="path 1-2")
        text = trace.dump()
        assert "join/request" in text and "path 1-2" in text
