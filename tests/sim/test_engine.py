"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(9.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in ("first", "second", "third"):
            sim.schedule(2.0, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(2.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(sim.now)
            if n > 0:
                sim.schedule(1.0, lambda: chain(n - 1))

        sim.schedule(1.0, lambda: chain(3))
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]


class TestRunUntil:
    def test_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_clock_advances_to_until_even_when_idle(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestRunaway:
    def test_event_limit_detects_livelock(self):
        sim = Simulator(max_events=100)

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            sim.run(until=1e9)

    def test_exactly_max_events_completes(self):
        # Boundary: a run needing exactly max_events must finish — the
        # guard is for the event *past* the limit, not the limit itself.
        sim = Simulator(max_events=5)
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]
        assert sim.events_processed == 5

    def test_one_past_the_limit_raises_after_firing_the_limit(self):
        sim = Simulator(max_events=5)
        fired = []
        for i in range(6):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        with pytest.raises(SimulationError):
            sim.run()
        # All max_events events actually executed before the raise, and
        # the overflowing event was neither executed nor dropped.
        assert fired == [0, 1, 2, 3, 4]
        assert sim.events_processed == 5
        assert sim.pending_events == 1

    def test_cancelled_events_do_not_count_toward_the_limit(self):
        sim = Simulator(max_events=3)
        fired = []
        for i in range(3):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
            sim.schedule(float(i + 1) + 0.5, lambda: fired.append("x")).cancel()
        sim.run()
        assert fired == [0, 1, 2]
        assert sim.events_processed == 3
