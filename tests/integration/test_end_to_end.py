"""End-to-end integration: the full SMRP story on one random network.

Builds both trees, injects the worst-case failure, recovers both ways,
checks the paper's qualitative claims, then replays the same failure in
the message-level simulator and watches service restoration happen in
simulated time.
"""

import numpy as np
import pytest

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.recovery import (
    estimate_restoration_latency,
    global_detour_recovery,
    local_detour_recovery,
    repair_tree,
    worst_case_failure,
)
from repro.errors import UnrecoverableFailureError
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.multicast.validation import check_tree_invariants
from repro.routing.link_state import ConvergenceModel
from repro.sim.failures import FailureSchedule
from repro.sim.protocols import SmrpSimulation


@pytest.fixture(scope="module")
def world():
    topology = waxman_topology(
        WaxmanConfig(n=60, alpha=0.35, beta=0.3, seed=77)
    ).topology
    rng = np.random.default_rng(78)
    members = [int(m) for m in rng.choice(range(1, 60), 12, replace=False)]
    smrp = SMRPProtocol(topology, 0, config=SMRPConfig(d_thresh=0.3))
    smrp.build(members)
    spf = SPFMulticastProtocol(topology, 0)
    spf.build(members)
    return topology, members, smrp, spf


class TestFullStory:
    def test_both_trees_serve_all_members(self, world):
        _, members, smrp, spf = world
        assert smrp.tree.members == frozenset(members)
        assert spf.tree.members == frozenset(members)
        check_tree_invariants(smrp.tree)
        check_tree_invariants(spf.tree)

    def test_smrp_reduces_sharing(self, world):
        """The design goal: SMRP's worst SHR is no worse than SPF's."""
        from repro.core.shr import shr_table

        _, __, smrp, spf = world
        assert max(shr_table(smrp.tree).values()) <= max(
            shr_table(spf.tree).values()
        )

    def test_average_recovery_improves(self, world):
        topology, members, smrp, spf = world
        improvements = []
        for member in members:
            try:
                rd_local = local_detour_recovery(
                    topology, smrp.tree, member,
                    worst_case_failure(smrp.tree, member),
                ).recovery_distance
                rd_global = global_detour_recovery(
                    topology, spf.tree, member,
                    worst_case_failure(spf.tree, member),
                ).recovery_distance
            except UnrecoverableFailureError:
                continue
            improvements.append((rd_global - rd_local) / rd_global)
        assert improvements, "no recoverable member in the scenario"
        assert sum(improvements) / len(improvements) > 0

    def test_latency_model_prefers_local(self, world):
        topology, members, smrp, spf = world
        model = ConvergenceModel(detection_delay=30.0)
        member = members[0]
        f_smrp = worst_case_failure(smrp.tree, member)
        f_spf = worst_case_failure(spf.tree, member)
        local = local_detour_recovery(topology, smrp.tree, member, f_smrp)
        global_ = global_detour_recovery(topology, spf.tree, member, f_spf)
        t_local = estimate_restoration_latency(
            topology, smrp.tree, local, f_smrp, convergence=model
        )
        t_global = estimate_restoration_latency(
            topology, spf.tree, global_, f_spf, convergence=model
        )
        assert t_local < t_global

    def test_full_repair_after_multi_failure(self, world):
        topology, members, smrp, _ = world
        member = members[0]
        failure = worst_case_failure(smrp.tree, member)
        report = repair_tree(topology, smrp.tree, failure, strategy="local")
        check_tree_invariants(report.repaired_tree)
        recovered = set(report.repaired_tree.members) | set(report.unrecoverable)
        assert recovered == set(members)


class TestDesReplay:
    def test_failure_recovery_in_simulated_time(self, world):
        topology, members, smrp, _ = world
        sim = SmrpSimulation(topology, 0, d_thresh=0.3)
        spacing = 40.0 * max(l.delay for l in topology.links())
        for i, m in enumerate(members[:6]):
            sim.schedule_join(spacing * (i + 1), m)
        settle = spacing * 8
        sim.run(until=settle)
        tree = sim.extract_tree()
        victim = members[0]
        path = tree.path_from_source(victim)
        FailureSchedule().fail_link_at(settle + 10.0, path[0], path[1]).arm(
            sim.sim, sim.network
        )
        sim.run(until=settle + 40 * spacing)
        final = sim.extract_tree()
        # Every member that can be served is served.
        assert final.is_member(victim) or not sim.recovery_records
        if sim.recovery_records:
            restored = [
                r for r in sim.recovery_records if r.restored_at is not None
            ]
            assert restored, "no recovery completed"
            for record in restored:
                assert record.restoration_latency > 0
        check_tree_invariants(final)
