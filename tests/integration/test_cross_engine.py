"""Cross-validation: the DES protocol and the graph engine build the same
trees, and the DES's advertised SHR converges to ground truth.

This is the key evidence that the fast graph-level engine used by the
parameter sweeps faithfully represents the distributed protocol.
"""

import numpy as np
import pytest

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.shr import shr_table
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.sim.protocols import SmrpSimulation, SpfSimulation


def scenario(seed: int, n: int = 30, group: int = 6):
    topology = waxman_topology(
        WaxmanConfig(n=n, alpha=0.5, beta=0.4, seed=seed)
    ).topology
    rng = np.random.default_rng(seed + 1)
    members = [int(m) for m in rng.choice(range(1, n), group, replace=False)]
    return topology, members


@pytest.mark.parametrize("seed", [1, 2, 3, 7, 11])
class TestSmrpEngines:
    def test_same_tree(self, seed):
        topology, members = scenario(seed)
        # Joins must be fully sequential in the DES (a join selecting paths
        # while another is in flight would read half-built SHR state), so
        # space them beyond the network diameter.
        sim = SmrpSimulation(topology, 0, d_thresh=0.3)
        spacing = 60.0 * max(l.delay for l in topology.links())
        for i, m in enumerate(members):
            sim.schedule_join(spacing * (i + 1), m)
        sim.run(until=spacing * (len(members) + 2))

        graph = SMRPProtocol(
            topology, 0, config=SMRPConfig(d_thresh=0.3, reshape_enabled=False)
        )
        graph.build(members)

        des_tree = sim.extract_tree()
        assert des_tree.tree_links() == graph.tree.tree_links()
        assert des_tree.members == graph.tree.members

    def test_des_shr_converges(self, seed):
        topology, members = scenario(seed)
        sim = SmrpSimulation(topology, 0, d_thresh=0.3)
        spacing = 60.0 * max(l.delay for l in topology.links())
        for i, m in enumerate(members):
            sim.schedule_join(spacing * (i + 1), m)
        sim.run(until=spacing * (len(members) + 4))
        truth = shr_table(sim.extract_tree())
        view = sim.shr_view()
        for node, value in truth.items():
            assert view[node] == value


@pytest.mark.parametrize("seed", [1, 5, 9])
class TestSpfEngines:
    def test_same_tree(self, seed):
        topology, members = scenario(seed)
        sim = SpfSimulation(topology, 0)
        spacing = 60.0 * max(l.delay for l in topology.links())
        for i, m in enumerate(members):
            sim.schedule_join(spacing * (i + 1), m)
        sim.run(until=spacing * (len(members) + 2))
        reference = SPFMulticastProtocol(topology, 0).build(members)
        assert sim.extract_tree().tree_links() == reference.tree_links()
