"""Tests for node placement models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.placement import (
    euclidean,
    grid_jitter_placement,
    max_pairwise_distance,
    uniform_placement,
)


class TestUniformPlacement:
    def test_count_and_bounds(self, rng):
        pts = uniform_placement(50, rng, scale=10.0)
        assert len(pts) == 50
        assert all(0 <= x <= 10 and 0 <= y <= 10 for x, y in pts)

    def test_zero_nodes(self, rng):
        assert uniform_placement(0, rng) == []

    def test_negative_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            uniform_placement(-1, rng)

    def test_bad_scale_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            uniform_placement(5, rng, scale=0.0)

    def test_deterministic_given_generator_state(self):
        a = uniform_placement(10, np.random.default_rng(3))
        b = uniform_placement(10, np.random.default_rng(3))
        assert a == b


class TestGridJitterPlacement:
    def test_count_and_bounds(self, rng):
        pts = grid_jitter_placement(30, rng, scale=6.0)
        assert len(pts) == 30
        assert all(-1 <= x <= 7 and -1 <= y <= 7 for x, y in pts)

    def test_zero_jitter_is_exact_grid(self, rng):
        pts = grid_jitter_placement(4, rng, scale=2.0, jitter=0.0)
        assert sorted(pts) == [(0.5, 0.5), (0.5, 1.5), (1.5, 0.5), (1.5, 1.5)]

    def test_minimum_spread(self, rng):
        """Jittered grid points never coincide."""
        pts = grid_jitter_placement(25, rng, scale=5.0, jitter=0.25)
        for i, a in enumerate(pts):
            for b in pts[i + 1 :]:
                assert euclidean(a, b) > 0.0

    def test_bad_jitter_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            grid_jitter_placement(4, rng, jitter=0.9)


class TestDistances:
    def test_euclidean(self):
        assert euclidean((0.0, 0.0), (3.0, 4.0)) == 5.0

    def test_max_pairwise(self):
        pts = [(0.0, 0.0), (1.0, 0.0), (0.0, 2.0)]
        assert max_pairwise_distance(pts) == pytest.approx(np.hypot(1, 2))

    def test_max_pairwise_degenerate(self):
        assert max_pairwise_distance([]) == 0.0
        assert max_pairwise_distance([(1.0, 1.0)]) == 0.0
