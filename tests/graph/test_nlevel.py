"""Tests for the N-level nested topology generator."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.nlevel import LevelSpec, n_level_topology


@pytest.fixture(scope="module")
def three_level():
    return n_level_topology(
        [
            LevelSpec(size=4, fanout=2, alpha=0.9),
            LevelSpec(size=5, fanout=2, alpha=0.8),
            LevelSpec(size=6, fanout=0, alpha=0.7),
        ],
        seed=5,
    )


class TestSpecValidation:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            n_level_topology([])

    def test_rejects_nonzero_leaf_fanout(self):
        with pytest.raises(ConfigurationError):
            n_level_topology([LevelSpec(size=4, fanout=2)])

    def test_rejects_zero_interior_fanout(self):
        with pytest.raises(ConfigurationError):
            n_level_topology(
                [LevelSpec(size=4, fanout=0), LevelSpec(size=4, fanout=0)]
            )

    def test_rejects_tiny_domain(self):
        with pytest.raises(ConfigurationError):
            LevelSpec(size=1, fanout=0)


class TestStructure:
    def test_domain_counts(self, three_level):
        # 1 root + 2 mid + 4 leaves.
        assert len(three_level.domains) == 7
        assert len(three_level.leaf_domains()) == 4
        assert three_level.depth == 3

    def test_node_counts(self, three_level):
        assert three_level.topology.num_nodes == 4 + 2 * 5 + 4 * 6

    def test_connected(self, three_level):
        assert three_level.topology.is_connected()

    def test_domains_partition_nodes(self, three_level):
        seen: set[int] = set()
        for domain in three_level.domains:
            assert not (domain.nodes & seen)
            seen |= domain.nodes
        assert seen == set(three_level.topology.nodes())

    def test_parent_child_mirror(self, three_level):
        for domain in three_level.domains:
            for child_id in domain.children:
                assert three_level.domains[child_id].parent == domain.domain_id

    def test_gateways_link_to_parent(self, three_level):
        for domain in three_level.domains[1:]:
            assert domain.gateway in domain.nodes
            parent = three_level.domains[domain.parent]
            for attachment in domain.attachments:
                assert attachment in parent.nodes
                assert three_level.topology.has_link(domain.gateway, attachment)

    def test_gateway_redundancy(self, three_level):
        for domain in three_level.domains[1:]:
            assert len(domain.attachments) == 2

    def test_root_has_no_gateway(self, three_level):
        assert three_level.root.gateway is None
        assert three_level.root.is_root


class TestHierarchyQueries:
    def test_domain_path(self, three_level):
        leaf = three_level.leaf_domains()[0]
        path = three_level.domain_path(leaf.domain_id)
        assert path[0] == three_level.root.domain_id
        assert path[-1] == leaf.domain_id
        assert len(path) == 3

    def test_lca_of_siblings(self, three_level):
        mid = three_level.domains[three_level.root.children[0]]
        a, b = mid.children
        assert three_level.lowest_common_ancestor(a, b) == mid.domain_id

    def test_lca_across_branches(self, three_level):
        left = three_level.domains[three_level.root.children[0]].children[0]
        right = three_level.domains[three_level.root.children[1]].children[0]
        assert (
            three_level.lowest_common_ancestor(left, right)
            == three_level.root.domain_id
        )

    def test_lca_with_self(self, three_level):
        leaf = three_level.leaf_domains()[0].domain_id
        assert three_level.lowest_common_ancestor(leaf, leaf) == leaf

    def test_reproducible(self):
        specs = [LevelSpec(size=3, fanout=2, alpha=0.9), LevelSpec(size=4)]
        a = n_level_topology(specs, seed=8)
        b = n_level_topology(specs, seed=8)
        assert [l.key for l in a.topology.links()] == [
            l.key for l in b.topology.links()
        ]
