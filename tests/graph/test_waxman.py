"""Tests for the Waxman topology generator."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.graph.waxman import (
    WaxmanConfig,
    calibrate_alpha_for_degree,
    waxman_topology,
)


class TestConfigValidation:
    def test_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            WaxmanConfig(n=1, alpha=0.2)

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ConfigurationError):
            WaxmanConfig(n=10, alpha=alpha)

    @pytest.mark.parametrize("beta", [0.0, 2.0])
    def test_rejects_bad_beta(self, beta):
        with pytest.raises(ConfigurationError):
            WaxmanConfig(n=10, alpha=0.2, beta=beta)

    def test_rejects_bad_delay_model(self):
        with pytest.raises(ConfigurationError):
            WaxmanConfig(n=10, alpha=0.2, delay_model="gaussian")


class TestGeneration:
    def test_reproducible_from_seed(self):
        cfg = WaxmanConfig(n=40, alpha=0.25, beta=0.25, seed=7)
        a = waxman_topology(cfg).topology
        b = waxman_topology(cfg).topology
        assert [l.key for l in a.links()] == [l.key for l in b.links()]
        assert [l.delay for l in a.links()] == [l.delay for l in b.links()]

    def test_different_seeds_differ(self):
        a = waxman_topology(WaxmanConfig(n=40, alpha=0.25, seed=1)).topology
        b = waxman_topology(WaxmanConfig(n=40, alpha=0.25, seed=2)).topology
        assert [l.key for l in a.links()] != [l.key for l in b.links()]

    def test_connected_after_repair(self):
        # A sparse configuration that essentially always needs repair.
        result = waxman_topology(
            WaxmanConfig(n=60, alpha=0.1, beta=0.15, seed=3)
        )
        assert result.topology.is_connected()
        if result.components_before_repair > 1:
            assert result.repair_links == result.components_before_repair - 1

    def test_repair_can_be_disabled(self):
        result = waxman_topology(
            WaxmanConfig(n=60, alpha=0.05, beta=0.1, seed=3, ensure_connected=False)
        )
        assert result.repair_links == 0

    def test_alpha_increases_density(self):
        sparse = waxman_topology(WaxmanConfig(n=80, alpha=0.1, seed=5))
        dense = waxman_topology(WaxmanConfig(n=80, alpha=0.6, seed=5))
        assert dense.average_degree > sparse.average_degree

    def test_beta_increases_long_links(self):
        """Larger beta admits longer links: mean link length grows."""

        def mean_link_length(beta: float) -> float:
            res = waxman_topology(
                WaxmanConfig(n=80, alpha=0.3, beta=beta, seed=11)
            )
            lengths = [l.delay for l in res.topology.links()]
            return sum(lengths) / len(lengths)

        assert mean_link_length(0.9) > mean_link_length(0.15)

    def test_distance_delay_model_matches_positions(self):
        result = waxman_topology(WaxmanConfig(n=30, alpha=0.4, seed=9))
        topo = result.topology
        for link in topo.links():
            pu = topo.position(link.u)
            pv = topo.position(link.v)
            dist = math.hypot(pu[0] - pv[0], pu[1] - pv[1])
            assert link.delay == pytest.approx(max(dist, 1.0))

    def test_uniform_delay_model_within_bounds(self):
        cfg = WaxmanConfig(n=30, alpha=0.4, seed=9, delay_model="uniform")
        topo = waxman_topology(cfg).topology
        for link in topo.links():
            assert cfg.min_delay <= link.delay <= cfg.scale

    def test_all_nodes_have_positions(self):
        topo = waxman_topology(WaxmanConfig(n=25, alpha=0.3, seed=2)).topology
        assert all(topo.position(n) is not None for n in topo.nodes())
        topo.validate()


class TestCalibration:
    def test_calibrated_alpha_hits_degree(self):
        alpha = calibrate_alpha_for_degree(
            5.0, n=100, beta=0.25, seeds=(0, 1), tolerance=0.5
        )
        degrees = [
            waxman_topology(
                WaxmanConfig(n=100, alpha=alpha, beta=0.25, seed=s)
            ).average_degree
            for s in (0, 1)
        ]
        assert abs(sum(degrees) / 2 - 5.0) <= 1.0

    def test_unreachable_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            calibrate_alpha_for_degree(90.0, n=20, beta=0.1, seeds=(0,))

    def test_non_positive_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            calibrate_alpha_for_degree(0.0)
