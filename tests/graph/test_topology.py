"""Unit tests for the Topology container."""

import pytest

from repro.errors import TopologyError
from repro.graph.topology import Link, Topology, edge_key


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_equal_endpoints_allowed_by_key_function(self):
        # edge_key itself does not validate; Topology.add_link does.
        assert edge_key(3, 3) == (3, 3)


class TestLink:
    def test_canonical_key(self):
        link = Link(4, 2, delay=1.0, cost=1.0)
        assert link.key == (2, 4)

    def test_other_endpoint(self):
        link = Link(1, 2, delay=1.0, cost=1.0)
        assert link.other(1) == 2
        assert link.other(2) == 1

    def test_other_rejects_non_endpoint(self):
        link = Link(1, 2, delay=1.0, cost=1.0)
        with pytest.raises(TopologyError):
            link.other(3)

    def test_rejects_non_positive_delay(self):
        with pytest.raises(TopologyError):
            Link(0, 1, delay=0.0, cost=1.0)

    def test_rejects_non_positive_cost(self):
        with pytest.raises(TopologyError):
            Link(0, 1, delay=1.0, cost=-2.0)


class TestConstruction:
    def test_add_and_query_nodes(self):
        topo = Topology()
        topo.add_node(3)
        topo.add_node(1)
        assert topo.nodes() == [1, 3]
        assert topo.has_node(3)
        assert not topo.has_node(2)

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(0)
        with pytest.raises(TopologyError):
            topo.add_node(0)

    def test_add_link_defaults_cost_to_delay(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        link = topo.add_link(0, 1, delay=2.5)
        assert link.cost == 2.5
        assert topo.cost(0, 1) == 2.5

    def test_add_link_with_distinct_cost(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        topo.add_link(0, 1, delay=2.0, cost=7.0)
        assert topo.delay(0, 1) == 2.0
        assert topo.cost(1, 0) == 7.0

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_node(0)
        with pytest.raises(TopologyError):
            topo.add_link(0, 0, delay=1.0)

    def test_link_to_missing_node_rejected(self):
        topo = Topology()
        topo.add_node(0)
        with pytest.raises(TopologyError):
            topo.add_link(0, 1, delay=1.0)

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        topo.add_link(0, 1, delay=1.0)
        with pytest.raises(TopologyError):
            topo.add_link(1, 0, delay=2.0)

    def test_remove_link(self, triangle):
        triangle.remove_link(0, 1)
        assert not triangle.has_link(0, 1)
        assert triangle.num_links == 2

    def test_remove_missing_link_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.remove_link(0, 0)

    def test_remove_node_drops_incident_links(self, triangle):
        triangle.remove_node(1)
        assert triangle.num_nodes == 2
        assert triangle.num_links == 1
        assert triangle.has_link(0, 2)


class TestQueries:
    def test_neighbors_sorted(self, fig1):
        assert list(fig1.neighbors(4)) == [1, 2, 3]  # D: A, B, C

    def test_degree(self, fig1):
        assert fig1.degree(4) == 3

    def test_average_degree(self, triangle):
        assert triangle.average_degree() == 2.0

    def test_average_degree_empty(self):
        assert Topology().average_degree() == 0.0

    def test_path_delay(self, fig1):
        # S -> A -> D
        assert fig1.path_delay([0, 1, 4]) == 2.0

    def test_path_delay_missing_link(self, fig1):
        with pytest.raises(TopologyError):
            fig1.path_delay([0, 4])  # S-D link does not exist

    def test_links_sorted_canonical(self, triangle):
        keys = [link.key for link in triangle.links()]
        assert keys == sorted(keys)
        assert all(u < v for u, v in keys)

    def test_connectivity(self, fig1):
        assert fig1.is_connected()
        lonely = Topology()
        lonely.add_node(0)
        lonely.add_node(1)
        assert not lonely.is_connected()
        assert len(lonely.connected_components()) == 2

    def test_adjacency_is_cached_and_invalidated(self):
        topo = Topology()
        topo.add_node(0)
        topo.add_node(1)
        topo.add_link(0, 1, delay=1.0)
        adj1 = topo.adjacency()
        assert topo.adjacency() is adj1  # cached
        topo.add_node(2)
        adj2 = topo.adjacency()
        assert adj2 is not adj1
        assert 2 in adj2


class TestCopyAndValidate:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_link(0, 1)
        assert triangle.has_link(0, 1)
        assert not clone.has_link(0, 1)

    def test_validate_accepts_fixture(self, fig4):
        fig4.validate()

    def test_validate_rejects_partial_positions(self):
        topo = Topology()
        topo.add_node(0, pos=(0.0, 0.0))
        topo.add_node(1)  # no position
        with pytest.raises(TopologyError):
            topo.validate()

    def test_position_roundtrip(self):
        topo = Topology()
        topo.add_node(0, pos=(1.5, 2.5))
        assert topo.position(0) == (1.5, 2.5)

    def test_repr_mentions_size(self, triangle):
        text = repr(triangle)
        assert "nodes=3" in text and "links=3" in text
