"""Tests for the transit-stub hierarchical topology generator."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.transit_stub import TransitStubConfig, transit_stub_topology


@pytest.fixture(scope="module")
def network():
    return transit_stub_topology(TransitStubConfig(seed=5))


class TestConfig:
    def test_total_nodes(self):
        cfg = TransitStubConfig(transit_nodes=4, stubs_per_transit=3, stub_size=8)
        assert cfg.total_nodes == 4 * (1 + 3 * 8)

    def test_rejects_single_transit(self):
        with pytest.raises(ConfigurationError):
            TransitStubConfig(transit_nodes=1)

    def test_rejects_zero_stubs(self):
        with pytest.raises(ConfigurationError):
            TransitStubConfig(stubs_per_transit=0)

    def test_rejects_tiny_stub(self):
        with pytest.raises(ConfigurationError):
            TransitStubConfig(stub_size=1)


class TestStructure:
    def test_node_count(self, network):
        assert network.topology.num_nodes == network.config.total_nodes

    def test_connected(self, network):
        assert network.topology.is_connected()

    def test_domain_count(self, network):
        cfg = network.config
        assert len(network.domains) == 1 + cfg.transit_nodes * cfg.stubs_per_transit
        assert network.transit_domain.level == 0
        assert all(d.level == 1 for d in network.stub_domains)

    def test_domains_partition_nodes(self, network):
        seen: set[int] = set()
        for domain in network.domains:
            assert not (domain.nodes & seen), "domains must be disjoint"
            seen |= domain.nodes
        assert seen == set(network.topology.nodes())

    def test_domain_of_is_consistent(self, network):
        for domain in network.domains:
            for node in domain.nodes:
                assert network.domain_of[node] == domain.domain_id

    def test_every_stub_has_gateway_link(self, network):
        for stub in network.stub_domains:
            assert stub.gateway in stub.nodes
            assert stub.attachment in network.transit_domain.nodes
            assert network.topology.has_link(stub.gateway, stub.attachment)
            assert network.topology.delay(
                stub.gateway, stub.attachment
            ) == network.config.gateway_delay

    def test_stub_internal_links_stay_internal(self, network):
        """The only link leaving a stub domain is its gateway link."""
        for stub in network.stub_domains:
            for link in network.topology.links():
                inside = link.u in stub.nodes, link.v in stub.nodes
                if inside == (True, False) or inside == (False, True):
                    stub_end = link.u if inside[0] else link.v
                    assert stub_end == stub.gateway

    def test_reproducible(self):
        a = transit_stub_topology(TransitStubConfig(seed=9))
        b = transit_stub_topology(TransitStubConfig(seed=9))
        assert [l.key for l in a.topology.links()] == [
            l.key for l in b.topology.links()
        ]
