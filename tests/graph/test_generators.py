"""Tests for deterministic topology fixtures, including the paper figures."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import (
    figure1_topology,
    figure4_topology,
    grid_topology,
    line_topology,
    node_id,
    ring_topology,
    star_topology,
)
from repro.routing.spf import shortest_path


class TestFigure1:
    def test_structure(self):
        topo = figure1_topology()
        assert topo.num_nodes == 5
        assert topo.num_links == 6
        topo.validate()

    def test_spf_tree_runs_through_a(self):
        """Both members' shortest paths use A, as drawn in Figure 1(a)."""
        topo = figure1_topology()
        S, A, C, D = node_id("S"), node_id("A"), node_id("C"), node_id("D")
        assert shortest_path(topo, S, C) == [S, A, C]
        assert shortest_path(topo, S, D) == [S, A, D]

    def test_detour_economics(self):
        """Local detour D→C is shorter than global detour D→B→S (RD 2 vs 3)."""
        topo = figure1_topology()
        assert topo.delay(node_id("C"), node_id("D")) == 2.0
        global_detour = topo.delay(node_id("D"), node_id("B")) + topo.delay(
            node_id("B"), node_id("S")
        )
        assert global_detour == 3.0


class TestFigure4:
    def test_structure(self):
        topo = figure4_topology()
        assert topo.num_nodes == 8
        topo.validate()

    def test_e_spf_path(self):
        topo = figure4_topology()
        S, A, D, E = (node_id(x) for x in "SADE")
        assert shortest_path(topo, E, S) == [E, D, A, S]

    def test_g_shortest_route_runs_through_tree(self):
        """G's true shortest path to S crosses D — the crux of the G join."""
        topo = figure4_topology()
        S, G = node_id("S"), node_id("G")
        path = shortest_path(topo, G, S)
        assert node_id("D") in path
        assert topo.path_delay(path) == pytest.approx(2.8)

    def test_f_bound_rejections(self):
        """F's alternatives via B exceed the 1.3 × SPF bound."""
        topo = figure4_topology()
        S, F, B, G = node_id("S"), node_id("F"), node_id("B"), node_id("G")
        spf = topo.path_delay(shortest_path(topo, F, S))
        assert spf == pytest.approx(2.4)
        bound = 1.3 * spf
        via_b = topo.path_delay([F, B, S])
        via_gb = topo.path_delay([F, G, B, S])
        assert via_b > bound
        assert via_gb > bound


class TestNodeId:
    def test_known_labels(self):
        assert node_id("S") == 0
        assert node_id("G") == 7

    def test_unknown_label(self):
        with pytest.raises(ConfigurationError):
            node_id("Z")


class TestParametricFamilies:
    def test_line(self):
        topo = line_topology(4)
        assert topo.num_links == 3
        assert list(topo.neighbors(0)) == [1]

    def test_line_single_node(self):
        assert line_topology(1).num_links == 0

    def test_line_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            line_topology(0)

    def test_ring(self):
        topo = ring_topology(5)
        assert topo.num_links == 5
        assert all(topo.degree(n) == 2 for n in topo.nodes())

    def test_ring_rejects_small(self):
        with pytest.raises(ConfigurationError):
            ring_topology(2)

    def test_star(self):
        topo = star_topology(6)
        assert topo.degree(0) == 6
        assert all(topo.degree(n) == 1 for n in range(1, 7))

    def test_grid(self):
        topo = grid_topology(3, 4)
        assert topo.num_nodes == 12
        # interior node degree 4, corner degree 2
        assert topo.degree(5) == 4
        assert topo.degree(0) == 2

    def test_grid_positions(self):
        topo = grid_topology(2, 2)
        assert topo.position(3) == (1.0, 1.0)

    def test_grid_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            grid_topology(0, 3)
