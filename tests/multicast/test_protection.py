"""Tests for the proactive-protection baseline."""

import pytest

from repro.errors import (
    AlreadyMemberError,
    NotMemberError,
    UnrecoverableFailureError,
)
from repro.graph.generators import node_id, ring_topology
from repro.multicast.protection import ProtectedMulticast, ProtectionStats
from repro.routing.failure_view import FailureSet
from repro.routing.spf import shortest_path


class TestJoinLeave:
    def test_protected_join_on_ring(self):
        ring = ring_topology(6)
        session = ProtectedMulticast(ring, 0)
        state = session.join(3)
        assert state.is_protected
        assert state.primary != state.backup

    def test_unprotected_join_on_bridge(self, line4):
        session = ProtectedMulticast(line4, 0)
        state = session.join(3)
        assert not state.is_protected
        assert state.primary == (0, 1, 2, 3)

    def test_double_join_rejected(self, fig1):
        session = ProtectedMulticast(fig1, node_id("S"))
        session.join(node_id("D"))
        with pytest.raises(AlreadyMemberError):
            session.join(node_id("D"))

    def test_leave(self, fig1):
        session = ProtectedMulticast(fig1, node_id("S"))
        session.join(node_id("D"))
        session.leave(node_id("D"))
        assert not session.members
        with pytest.raises(NotMemberError):
            session.leave(node_id("D"))


class TestSwitchover:
    def test_primary_failure_switches_instantly(self, fig1):
        session = ProtectedMulticast(fig1, node_id("S"))
        state = session.join(node_id("D"))
        assert state.primary == (node_id("S"), node_id("A"), node_id("D"))
        failure = FailureSet.links((node_id("A"), node_id("D")))
        assert state.active_path(failure) == state.backup

    def test_double_failure_is_fatal(self, fig1):
        session = ProtectedMulticast(fig1, node_id("S"))
        state = session.join(node_id("D"))
        both = FailureSet.links(
            (node_id("A"), node_id("D")), (node_id("B"), node_id("D"))
        ).union(FailureSet.links((node_id("C"), node_id("D"))))
        with pytest.raises(UnrecoverableFailureError):
            state.active_path(both)

    def test_survives_map(self, fig1):
        session = ProtectedMulticast(fig1, node_id("S"))
        session.build([node_id("C"), node_id("D")])
        outcome = session.survives(FailureSet.links((node_id("S"), node_id("A"))))
        assert outcome[node_id("D")]  # backup via B
        # C's survival depends on its own pair; it must be reported either way.
        assert node_id("C") in outcome

    def test_switchover_delay_penalty(self, fig1):
        session = ProtectedMulticast(fig1, node_id("S"))
        session.join(node_id("D"))
        penalty = session.switchover_delay_penalty(node_id("D"))
        assert penalty >= 0.0

    def test_unknown_member_penalty_rejected(self, fig1):
        session = ProtectedMulticast(fig1, node_id("S"))
        with pytest.raises(NotMemberError):
            session.switchover_delay_penalty(node_id("D"))

    def test_unprotected_member_penalty_is_none(self, line4):
        """Regression: a bridge member has no backup, so the penalty is
        ``None`` — not ``0.0``, which would be indistinguishable from a
        backup of equal delay."""
        session = ProtectedMulticast(line4, 0)
        state = session.join(3)
        assert state.backup is None
        assert session.switchover_delay_penalty(3) is None

    def test_protected_member_penalty_is_a_float(self, ring6):
        session = ProtectedMulticast(ring6, 0)
        session.join(3)
        penalty = session.switchover_delay_penalty(3)
        assert penalty is not None
        assert penalty >= 0.0


class TestAccounting:
    def test_reserved_exceeds_working(self, waxman50):
        session = ProtectedMulticast(waxman50, 0)
        session.build([9, 17, 28, 35, 42])
        stats = session.stats()
        assert stats.reserved_cost >= stats.working_cost
        assert stats.protection_premium >= 0.0
        assert stats.protected_members + stats.unprotected_members == 5

    def test_every_protected_member_survives_any_single_primary_failure(
        self, waxman50
    ):
        session = ProtectedMulticast(waxman50, 0)
        session.build([9, 17, 28, 35])
        for member, state in session.members.items():
            if not state.is_protected:
                continue
            for u, v in zip(state.primary, state.primary[1:]):
                assert state.active_path(FailureSet.links((u, v))) == state.backup

    def test_premium_infinite_when_nothing_works(self):
        """Regression: reserved state with zero working cost is an
        infinite premium, not a silent 0.0."""
        stats = ProtectionStats(reserved_cost=5.0, working_cost=0.0)
        assert stats.protection_premium == float("inf")

    def test_premium_zero_only_for_truly_empty_session(self):
        assert ProtectionStats().protection_premium == 0.0
        session = ProtectedMulticast(ring_topology(6), 0)
        assert session.stats().protection_premium == 0.0

    def test_premium_finite_when_working(self, ring6):
        session = ProtectedMulticast(ring6, 0)
        session.join(3)
        premium = session.stats().protection_premium
        assert premium >= 0.0
        assert premium != float("inf")


class TestTieBreakConvention:
    def test_bridge_fallback_is_the_dijkstra_path(self, line4):
        """Regression: the unprotected fallback must be scalar dijkstra's
        path, so the primary never depends on which arm produced it."""
        session = ProtectedMulticast(line4, 0)
        state = session.join(3)
        assert state.primary == tuple(shortest_path(line4, 0, 3))

    def test_bridge_fallback_matches_dijkstra_on_random_graphs(self, waxman50):
        for member in (7, 13, 22, 31, 44):
            session = ProtectedMulticast(waxman50, 0)
            state = session.join(member)
            if state.backup is None:
                assert state.primary == tuple(
                    shortest_path(waxman50, 0, member)
                )
