"""Tests for group membership workloads."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.multicast.group import (
    GroupAction,
    GroupEvent,
    GroupWorkload,
    random_member_set,
)


class TestRandomMemberSet:
    def test_size_and_exclusion(self, waxman50, rng):
        members = random_member_set(waxman50, 10, 20, rng)
        assert len(members) == 20
        assert 10 not in members
        assert len(set(members)) == 20

    def test_deterministic(self, waxman50):
        a = random_member_set(waxman50, 0, 15, np.random.default_rng(9))
        b = random_member_set(waxman50, 0, 15, np.random.default_rng(9))
        assert a == b

    def test_too_large_group_rejected(self, waxman50, rng):
        with pytest.raises(ConfigurationError):
            random_member_set(waxman50, 0, 50, rng)

    def test_zero_group_rejected(self, waxman50, rng):
        with pytest.raises(ConfigurationError):
            random_member_set(waxman50, 0, 0, rng)


class TestWorkload:
    def test_events_sorted(self):
        w = GroupWorkload()
        w.add(GroupEvent(5.0, 1, GroupAction.JOIN))
        w.add(GroupEvent(2.0, 2, GroupAction.JOIN))
        assert [e.time for e in w] == [2.0, 5.0]

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupEvent(-1.0, 0, GroupAction.JOIN)

    def test_members_at(self):
        w = GroupWorkload()
        w.add(GroupEvent(1.0, 7, GroupAction.JOIN))
        w.add(GroupEvent(3.0, 7, GroupAction.LEAVE))
        w.add(GroupEvent(2.0, 8, GroupAction.JOIN))
        assert w.members_at(0.5) == set()
        assert w.members_at(2.0) == {7, 8}
        assert w.members_at(10.0) == {8}

    def test_static_joins(self):
        w = GroupWorkload.static_joins([4, 9, 2], spacing=2.0)
        assert [(e.time, e.node) for e in w] == [(0.0, 4), (2.0, 9), (4.0, 2)]
        assert all(e.action is GroupAction.JOIN for e in w)

    def test_static_joins_bad_spacing(self):
        with pytest.raises(ConfigurationError):
            GroupWorkload.static_joins([1], spacing=0.0)


class TestEventOrdering:
    """Regression: direct construction must sort like add() does."""

    def test_constructor_sorts_unsorted_events(self):
        events = [
            GroupEvent(5.0, 1, GroupAction.JOIN),
            GroupEvent(1.0, 3, GroupAction.JOIN),
            GroupEvent(2.0, 2, GroupAction.JOIN),
        ]
        direct = GroupWorkload(events)
        incremental = GroupWorkload()
        for event in [
            GroupEvent(5.0, 1, GroupAction.JOIN),
            GroupEvent(1.0, 3, GroupAction.JOIN),
            GroupEvent(2.0, 2, GroupAction.JOIN),
        ]:
            incremental.add(event)
        assert direct.events == incremental.events
        assert [e.time for e in direct] == [1.0, 2.0, 5.0]

    def test_members_at_with_unsorted_construction(self):
        # Before the constructor sorted, an out-of-order list broke
        # members_at's early-exit scan: the 1.0 join hid behind the 3.0
        # leave and members_at(2.0) wrongly came back empty.
        direct = GroupWorkload([
            GroupEvent(3.0, 7, GroupAction.LEAVE),
            GroupEvent(1.0, 7, GroupAction.JOIN),
        ])
        assert direct.members_at(2.0) == {7}
        assert direct.members_at(4.0) == set()

    def test_simultaneous_events_canonical_order(self):
        # Same instant: member id breaks the tie, then join sorts before
        # leave — a node joining and leaving at t deterministically ends
        # up out of the group, whatever the recording order.
        forward = GroupWorkload([
            GroupEvent(2.0, 9, GroupAction.JOIN),
            GroupEvent(2.0, 9, GroupAction.LEAVE),
            GroupEvent(2.0, 4, GroupAction.JOIN),
        ])
        backward = GroupWorkload([
            GroupEvent(2.0, 9, GroupAction.LEAVE),
            GroupEvent(2.0, 4, GroupAction.JOIN),
            GroupEvent(2.0, 9, GroupAction.JOIN),
        ])
        assert forward.events == backward.events
        assert forward.members_at(2.0) == {4}
        assert [(e.node, e.action.value) for e in forward] == [
            (4, "join"), (9, "join"), (9, "leave"),
        ]


class TestChurn:
    def test_events_within_duration(self, waxman50):
        rng = np.random.default_rng(4)
        w = GroupWorkload.churn(
            waxman50, 0, rng, duration=200.0, mean_holding_time=30.0,
            mean_interarrival=5.0,
        )
        assert len(w) > 10
        assert all(0.0 <= e.time < 200.0 for e in w)

    def test_joins_precede_leaves_per_node(self, waxman50):
        rng = np.random.default_rng(4)
        w = GroupWorkload.churn(
            waxman50, 0, rng, duration=150.0, mean_holding_time=20.0,
            mean_interarrival=4.0,
        )
        active: set[int] = set()
        for event in w:
            if event.action is GroupAction.JOIN:
                assert event.node not in active
                active.add(event.node)
            else:
                assert event.node in active
                active.discard(event.node)

    def test_source_never_joins(self, waxman50):
        rng = np.random.default_rng(4)
        w = GroupWorkload.churn(
            waxman50, 0, rng, duration=300.0, mean_holding_time=20.0,
            mean_interarrival=2.0,
        )
        assert all(e.node != 0 for e in w)

    def test_initial_members(self, waxman50):
        rng = np.random.default_rng(4)
        w = GroupWorkload.churn(
            waxman50, 0, rng, duration=100.0, mean_holding_time=10.0,
            mean_interarrival=10.0, initial_members=[5, 6],
        )
        assert {5, 6} <= w.members_at(0.0)

    def test_bad_parameters_rejected(self, waxman50, rng):
        with pytest.raises(ConfigurationError):
            GroupWorkload.churn(
                waxman50, 0, rng, duration=0.0, mean_holding_time=1.0,
                mean_interarrival=1.0,
            )
