"""Tests for ASCII tree rendering."""

from repro.graph.generators import FIGURE_NODES, node_id
from repro.multicast.render import render_comparison, render_tree, tree_statistics
from repro.multicast.tree import MulticastTree

NAME = {v: k for k, v in FIGURE_NODES.items()}


def fig1_tree(fig1):
    tree = MulticastTree(fig1, node_id("S"))
    tree.graft([node_id("S"), node_id("A"), node_id("C")])
    tree.graft([node_id("A"), node_id("D")])
    return tree


class TestRenderTree:
    def test_all_nodes_present(self, fig1):
        tree = fig1_tree(fig1)
        art = render_tree(tree, label=lambda n: NAME[n])
        for label in ("S", "A", "C", "D"):
            assert label in art

    def test_members_starred(self, fig1):
        tree = fig1_tree(fig1)
        art = render_tree(tree, label=lambda n: NAME[n])
        assert "C *" in art
        assert "D *" in art
        assert "A *" not in art  # relay

    def test_root_first_line(self, fig1):
        tree = fig1_tree(fig1)
        art = render_tree(tree, label=lambda n: NAME[n])
        assert art.splitlines()[0] == "S"

    def test_structure_connectors(self, fig1):
        tree = fig1_tree(fig1)
        art = render_tree(tree)
        assert "├── " in art  # first of two siblings
        assert "└── " in art  # last child

    def test_delays_shown(self, fig1):
        tree = fig1_tree(fig1)
        art = render_tree(tree, show_delays=True)
        assert "(1)" in art

    def test_single_node_tree(self, fig1):
        tree = MulticastTree(fig1, node_id("S"))
        assert render_tree(tree) == "0"

    def test_line_count_matches_nodes(self, waxman50):
        from repro.multicast.spf_protocol import SPFMulticastProtocol

        tree = SPFMulticastProtocol(waxman50, 0).build([9, 22, 37, 44])
        art = render_tree(tree)
        assert len(art.splitlines()) == len(tree.on_tree_nodes())


class TestComparison:
    def test_side_by_side(self, fig1):
        tree = fig1_tree(fig1)
        other = MulticastTree(fig1, node_id("S"))
        other.graft([node_id("S"), node_id("B"), node_id("D")])
        art = render_comparison(tree, other, "SPF", "SMRP")
        lines = art.splitlines()
        assert "SPF" in lines[0] and "SMRP" in lines[0]
        assert len(lines) >= 5


class TestStatistics:
    def test_summary_fields(self, fig1):
        tree = fig1_tree(fig1)
        text = tree_statistics(tree)
        assert "members=2" in text
        assert "links=3" in text
        assert "max_SHR=3" in text
