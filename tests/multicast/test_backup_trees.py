"""Per-link backup trees: property suite and protection-engine tests.

The tentpole guarantees asserted here:

* every pre-installed backup tree covers the full member set minus the
  members its protected link bridges (``unprotectable``);
* backups are valid trees (loop-free, mirrored parent/children maps);
* a backup never uses the link it protects;
* switchover is *equivalent* to a fresh post-failure rebuild with the
  engine's fallback strategy — same links, same members, same parents;
* every switchover recovery lands at recovery distance zero.
"""

import pytest
from hypothesis import given, settings, strategies as st

import numpy as np

from repro.errors import ConfigurationError
from repro.core.recovery import repair_tree
from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.multicast.backup_trees import (
    AlternatePathProtocol,
    BackupTreeProtocol,
    PerLinkBackupTrees,
    protected_links,
)
from repro.multicast.group import random_member_set
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.multicast.validation import check_tree_invariants
from repro.obs import NULL_OBS
from repro.routing.failure_view import FailureSet


def make_topology(seed: int, n: int = 30):
    return waxman_topology(
        WaxmanConfig(n=n, alpha=0.4, beta=0.35, seed=seed)
    ).topology


def build_session(seed: int, group_size: int = 8):
    topology = make_topology(seed)
    rng = np.random.default_rng(seed + 1000)
    source = int(rng.integers(len(topology.nodes())))
    members = random_member_set(topology, source, group_size, rng)
    protocol = SPFMulticastProtocol(topology, source, self_check=False)
    protocol.build(members)
    return topology, protocol.tree


def tree_shape(tree):
    """Comparable structural identity of a tree."""
    return (
        tree.source,
        tree.members,
        tree.tree_links(),
        {node: tree.parent(node) for node in tree.on_tree_nodes()},
    )


class TestProtectedLinks:
    def test_negative_budget_rejected(self):
        _, tree = build_session(0)
        with pytest.raises(ConfigurationError):
            protected_links(tree, -1)

    def test_budget_caps_the_set(self):
        _, tree = build_session(0)
        assert protected_links(tree, 0) == []
        assert len(protected_links(tree, 3)) == 3
        everything = protected_links(tree, 10**6)
        assert len(everything) == len(tree.tree_links())

    def test_ranked_by_subtree_load_then_edge(self):
        tree_topology, tree = build_session(1)
        ranked = protected_links(tree, 10**6)

        def load(edge):
            u, v = edge
            downstream = v if tree.parent(v) == u else u
            return tree.subtree_member_count(downstream)

        loads = [load(edge) for edge in ranked]
        assert loads == sorted(loads, reverse=True)
        for (la, ea), (lb, eb) in zip(
            [(-l, e) for l, e in zip(loads, ranked)],
            [(-l, e) for l, e in zip(loads, ranked)][1:],
        ):
            assert (la, ea) <= (lb, eb)


class TestBackupTreeProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_backups_are_valid_and_disjoint_from_their_link(self, seed):
        topology, tree = build_session(seed)
        backups = PerLinkBackupTrees(topology, budget=4, strategy="global")
        backups.ensure(tree)
        for link in backups.links():
            backup = backups._backups[link]
            check_tree_invariants(backup.tree)
            # The protected link is exactly what failed when this tree
            # was computed; it must not appear in the replacement.
            assert link not in backup.tree.tree_links()
            # Full member coverage, minus the bridged members.
            covered = {
                m for m in tree.members if backup.tree.is_member(m)
            }
            assert covered == tree.members - set(backup.unprotectable)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=200),
        strategy=st.sampled_from(["local", "global"]),
    )
    def test_switchover_equals_fresh_rebuild(self, seed, strategy):
        topology, tree = build_session(seed)
        backups = PerLinkBackupTrees(topology, budget=4, strategy=strategy)
        backups.ensure(tree)
        for link in backups.links():
            failures = FailureSet.links(link)
            backup = backups.lookup(failures)
            if backup is None:
                # The stored tree itself crosses the failed link set
                # only in multi-failure scenarios; a single protected
                # failure must always be covered.
                pytest.fail(f"protected link {link} not covered")
            fresh = repair_tree(
                topology, tree, failures, strategy=strategy, obs=NULL_OBS
            )
            assert tree_shape(backup.tree) == tree_shape(fresh.repaired_tree)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=120))
    def test_switchover_recoveries_have_zero_distance(self, seed):
        topology, tree = build_session(seed)
        engine = BackupTreeProtocol(
            topology, tree.source, mode="protection", budget=4
        )
        engine.build(sorted(tree.members))
        for link in engine.backups.links():
            report = engine.plan_repair(FailureSet.links(link))
            assert report.strategy == "backup"
            for recovery in report.recoveries:
                assert recovery.recovery_distance == 0.0
                assert recovery.recovery_hops == 0


class TestBackupTreeProtocol:
    def test_unknown_mode_rejected(self):
        topology = make_topology(0)
        with pytest.raises(ConfigurationError):
            BackupTreeProtocol(topology, 0, mode="bogus")

    def test_unprotected_failure_falls_back(self):
        topology, tree = build_session(3)
        engine = BackupTreeProtocol(
            topology, tree.source, mode="protection", budget=1
        )
        engine.build(sorted(tree.members))
        unprotected = sorted(
            tree.tree_links() - set(engine.backups.links())
        )
        assert unprotected, "budget 1 must leave unprotected links"
        report = engine.plan_repair(FailureSet.links(unprotected[0]))
        assert report.strategy == "global"

    def test_hybrid_falls_back_to_local_detour(self):
        topology, tree = build_session(3)
        engine = BackupTreeProtocol(
            topology, tree.source, mode="hybrid", budget=1
        )
        engine.build(sorted(tree.members))
        unprotected = sorted(
            engine.tree.tree_links() - set(engine.backups.links())
        )
        report = engine.plan_repair(FailureSet.links(unprotected[0]))
        assert report.strategy == "local"

    def test_repair_adopts_the_backup_and_rebinds_state(self):
        topology, tree = build_session(5)
        engine = BackupTreeProtocol(
            topology, tree.source, mode="hybrid", budget=4
        )
        engine.build(sorted(tree.members))
        link = engine.backups.links()[0]
        report = engine.repair(FailureSet.links(link))
        assert report.strategy == "backup"
        assert engine.tree is report.repaired_tree
        # The hybrid's SMRP state must follow the adopted tree.
        assert engine._inner.state.tree is report.repaired_tree
        # A later failure on the new tree still repairs cleanly.
        check_tree_invariants(engine.tree)

    def test_standing_state_is_beyond_the_working_tree(self):
        topology, tree = build_session(7)
        engine = BackupTreeProtocol(
            topology, tree.source, mode="protection", budget=4
        )
        engine.build(sorted(tree.members))
        standing = engine.standing_links()
        assert standing.isdisjoint(engine.tree.tree_links())
        assert engine.standing_cost() == pytest.approx(
            sum(topology.cost(u, v) for u, v in standing)
        )

    def test_membership_churn_invalidates_backups(self):
        topology, tree = build_session(9)
        engine = BackupTreeProtocol(
            topology, tree.source, mode="protection", budget=4
        )
        members = sorted(tree.members)
        engine.build(members)
        before = engine.backups.links()
        engine.leave(members[-1])
        assert engine.backups._dirty
        engine.backups.ensure(engine.tree)
        assert not engine.backups._dirty
        assert engine.backups.links() is not before


class TestAlternatePathProtocol:
    def test_alternate_recovery_without_convergence(self):
        topology, tree = build_session(11)
        engine = AlternatePathProtocol(topology, tree.source)
        engine.build(sorted(tree.members))
        links = sorted(tree.tree_links())
        report = engine.plan_repair(FailureSet.links(links[0]))
        assert report.strategy == "alternate"
        for recovery in report.recoveries:
            assert recovery.strategy in ("alternate", "global")
        check_tree_invariants(report.repaired_tree)
        assert not report.repaired_tree.disconnected_members(
            FailureSet.links(links[0])
        )

    def test_tables_garbage_collected_on_leave(self):
        topology, tree = build_session(11)
        engine = AlternatePathProtocol(topology, tree.source)
        members = sorted(tree.members)
        engine.build(members)
        assert members[0] in engine._tables
        engine.leave(members[0])
        engine.ensure_tables()
        assert members[0] not in engine._tables

    def test_standing_state_excludes_working_tree(self):
        topology, tree = build_session(13)
        engine = AlternatePathProtocol(topology, tree.source)
        engine.build(sorted(tree.members))
        standing = engine.standing_links()
        assert standing.isdisjoint(engine.tree.tree_links())
