"""Tests for tree invariant checking (corruption detection)."""

import pytest

from repro.errors import MulticastError
from repro.graph.generators import node_id
from repro.multicast.tree import MulticastTree
from repro.multicast.validation import check_tree_invariants


@pytest.fixture
def tree(fig1):
    t = MulticastTree(fig1, node_id("S"))
    t.graft([node_id("S"), node_id("A"), node_id("C")])
    t.graft([node_id("A"), node_id("D")])
    return t


class TestInvariantDetection:
    def test_valid_tree_passes(self, tree):
        check_tree_invariants(tree)

    def test_detects_unmirrored_child(self, tree):
        tree._children[node_id("S")].add(node_id("B"))
        with pytest.raises(MulticastError):
            check_tree_invariants(tree)

    def test_detects_off_root_chain(self, tree):
        tree._parent[node_id("A")] = node_id("B")
        with pytest.raises(MulticastError):
            check_tree_invariants(tree)

    def test_detects_cycle(self, tree):
        # Create S -> A -> C and force A's parent to C: cycle A-C.
        tree._parent[node_id("A")] = node_id("C")
        tree._children[node_id("C")].add(node_id("A"))
        tree._children[node_id("S")].discard(node_id("A"))
        with pytest.raises(MulticastError):
            check_tree_invariants(tree)

    def test_detects_phantom_link(self, tree):
        # Re-parent D under S although the topology has no S-D link.
        tree._children[node_id("A")].discard(node_id("D"))
        tree._parent[node_id("D")] = node_id("S")
        tree._children[node_id("S")].add(node_id("D"))
        with pytest.raises(MulticastError):
            check_tree_invariants(tree)

    def test_detects_off_tree_member(self, tree):
        tree._members.add(node_id("B"))
        with pytest.raises(MulticastError):
            check_tree_invariants(tree)

    def test_detects_dead_branch(self, tree):
        tree._members.discard(node_id("C"))
        with pytest.raises(MulticastError):
            check_tree_invariants(tree)

    def test_detects_source_with_parent(self, tree):
        tree._parent[node_id("S")] = node_id("A")
        with pytest.raises(MulticastError):
            check_tree_invariants(tree)
