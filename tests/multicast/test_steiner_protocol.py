"""Tests for the Takahashi–Matsuyama cost-minimizing baseline."""

import numpy as np
import pytest

from repro.errors import AlreadyMemberError, NoPathError, NotMemberError
from repro.graph.generators import node_id
from repro.graph.topology import Topology
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.multicast.steiner_protocol import SteinerMulticastProtocol
from repro.multicast.validation import check_tree_invariants
from repro.routing.failure_view import FailureSet


class TestJoins:
    def test_first_join_is_cheapest_path(self, fig1):
        proto = SteinerMulticastProtocol(fig1, node_id("S"))
        path = proto.join(node_id("D"))
        assert path == [node_id("S"), node_id("A"), node_id("D")]

    def test_second_join_grafts_to_nearest_tree_point(self, fig1):
        """C joins after D: TM grafts C to A (cost 1), same as SPF here;
        then B joins and grafts to D (cost 1) instead of S (cost 2)."""
        proto = SteinerMulticastProtocol(fig1, node_id("S"))
        proto.join(node_id("D"))
        proto.join(node_id("C"))
        path = proto.join(node_id("B"))
        assert path == [node_id("D"), node_id("B")]

    def test_uses_cost_weight_not_delay(self):
        topo = Topology()
        for n in range(4):
            topo.add_node(n)
        # 0-1 cheap but slow; 0-2-1 fast but expensive.
        topo.add_link(0, 1, delay=10.0, cost=1.0)
        topo.add_link(0, 2, delay=1.0, cost=5.0)
        topo.add_link(2, 1, delay=1.0, cost=5.0)
        proto = SteinerMulticastProtocol(topo, 0)
        assert proto.join(1) == [0, 1]

    def test_double_join_rejected(self, fig1):
        proto = SteinerMulticastProtocol(fig1, node_id("S"))
        proto.join(node_id("D"))
        with pytest.raises(AlreadyMemberError):
            proto.join(node_id("D"))

    def test_relay_becomes_member(self, fig1):
        proto = SteinerMulticastProtocol(fig1, node_id("S"))
        proto.join(node_id("D"))
        assert proto.join(node_id("A")) == [node_id("A")]

    def test_unreachable_join_raises(self, fig1):
        proto = SteinerMulticastProtocol(fig1, node_id("S"))
        isolation = FailureSet.nodes(node_id("A"), node_id("B"), node_id("C"))
        with pytest.raises(NoPathError):
            proto.join(node_id("D"), failures=isolation)

    def test_leave(self, fig1):
        proto = SteinerMulticastProtocol(fig1, node_id("S"))
        proto.join(node_id("D"))
        proto.leave(node_id("D"))
        assert proto.tree.on_tree_nodes() == [node_id("S")]
        with pytest.raises(NotMemberError):
            proto.leave(node_id("D"))


class TestCostMinimization:
    def test_cheaper_than_spf_on_average(self, waxman50):
        """TM's whole point: lower tree cost than SPF-based joins."""
        rng = np.random.default_rng(3)
        costs_tm, costs_spf = [], []
        for trial in range(5):
            members = [
                int(m) for m in rng.choice(range(1, 50), 12, replace=False)
            ]
            tm = SteinerMulticastProtocol(waxman50, 0, self_check=False)
            spf = SPFMulticastProtocol(waxman50, 0, self_check=False)
            costs_tm.append(tm.build(members).tree_cost())
            costs_spf.append(spf.build(members).tree_cost())
        assert sum(costs_tm) < sum(costs_spf)

    def test_invariants_hold(self, waxman50):
        proto = SteinerMulticastProtocol(waxman50, 0)
        proto.build([5, 17, 29, 33, 41])
        check_tree_invariants(proto.tree)
