"""Tests for the SPF (PIM/MOSPF-style) baseline protocol."""

import pytest

from repro.errors import AlreadyMemberError, NotMemberError
from repro.graph.generators import node_id
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.multicast.validation import check_tree_invariants
from repro.routing.spf import dijkstra


class TestJoin:
    def test_builds_figure1_tree(self, fig1):
        """Figure 1(a): C and D both route through A."""
        proto = SPFMulticastProtocol(fig1, node_id("S"))
        proto.join(node_id("C"))
        proto.join(node_id("D"))
        assert proto.tree.tree_links() == {(0, 1), (1, 3), (1, 4)}

    def test_join_returns_graft_path(self, fig1):
        proto = SPFMulticastProtocol(fig1, node_id("S"))
        path = proto.join(node_id("C"))
        assert path == [node_id("S"), node_id("A"), node_id("C")]

    def test_join_merges_at_first_on_tree_node(self, fig1):
        proto = SPFMulticastProtocol(fig1, node_id("S"))
        proto.join(node_id("C"))
        path = proto.join(node_id("D"))
        # D's SPF path to S is D-A-S; A is already on the tree.
        assert path == [node_id("A"), node_id("D")]

    def test_join_on_tree_relay(self, fig1):
        proto = SPFMulticastProtocol(fig1, node_id("S"))
        proto.join(node_id("C"))
        path = proto.join(node_id("A"))  # already a relay
        assert path == [node_id("A")]
        assert proto.tree.is_member(node_id("A"))

    def test_double_join_rejected(self, fig1):
        proto = SPFMulticastProtocol(fig1, node_id("S"))
        proto.join(node_id("C"))
        with pytest.raises(AlreadyMemberError):
            proto.join(node_id("C"))

    def test_member_delay_is_spf_optimal(self, waxman50):
        proto = SPFMulticastProtocol(waxman50, 0)
        members = [7, 13, 25, 31, 44]
        proto.build(members)
        spf = dijkstra(waxman50, 0)
        for m in members:
            assert proto.tree.delay_from_source(m) == pytest.approx(spf.dist[m])


class TestLeave:
    def test_leave_prunes(self, fig1):
        proto = SPFMulticastProtocol(fig1, node_id("S"))
        proto.build([node_id("C"), node_id("D")])
        removed = proto.leave(node_id("D"))
        assert removed == [node_id("D")]
        check_tree_invariants(proto.tree)

    def test_leave_non_member_rejected(self, fig1):
        proto = SPFMulticastProtocol(fig1, node_id("S"))
        with pytest.raises(NotMemberError):
            proto.leave(node_id("C"))

    def test_join_leave_roundtrip_restores_empty_tree(self, waxman50):
        proto = SPFMulticastProtocol(waxman50, 0)
        members = [7, 13, 25]
        proto.build(members)
        for m in members:
            proto.leave(m)
        assert proto.tree.on_tree_nodes() == [0]
        assert not proto.tree.members
