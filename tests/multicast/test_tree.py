"""Tests for the MulticastTree structure."""

import pytest

from repro.errors import MulticastError, NotOnTreeError, TopologyError
from repro.graph.generators import node_id
from repro.multicast.tree import MulticastTree
from repro.multicast.validation import check_tree_invariants
from repro.routing.failure_view import FailureSet


@pytest.fixture
def fig1_tree(fig1):
    """The SPF tree of Figure 1(a): S-A, A-C, A-D with members C, D."""
    tree = MulticastTree(fig1, node_id("S"))
    tree.graft([node_id("S"), node_id("A"), node_id("C")])
    tree.graft([node_id("A"), node_id("D")])
    return tree


class TestConstruction:
    def test_source_always_on_tree(self, fig1):
        tree = MulticastTree(fig1, 0)
        assert tree.is_on_tree(0)
        assert tree.parent(0) is None
        assert not tree.is_member(0)

    def test_unknown_source_rejected(self, fig1):
        with pytest.raises(TopologyError):
            MulticastTree(fig1, 99)

    def test_graft_builds_branch(self, fig1_tree):
        assert fig1_tree.is_member(node_id("C"))
        assert fig1_tree.is_member(node_id("D"))
        assert fig1_tree.parent(node_id("C")) == node_id("A")
        assert fig1_tree.children(node_id("A")) == [node_id("C"), node_id("D")]
        check_tree_invariants(fig1_tree)

    def test_graft_single_node_marks_member(self, fig1_tree):
        fig1_tree.graft([node_id("A")])
        assert fig1_tree.is_member(node_id("A"))

    def test_graft_requires_on_tree_merge(self, fig1):
        tree = MulticastTree(fig1, 0)
        with pytest.raises(NotOnTreeError):
            tree.graft([node_id("A"), node_id("D")])

    def test_graft_rejects_revisiting_tree(self, fig1_tree):
        with pytest.raises(MulticastError):
            fig1_tree.graft([node_id("S"), node_id("A")])  # A already on tree

    def test_graft_rejects_missing_link(self, fig1):
        tree = MulticastTree(fig1, node_id("S"))
        with pytest.raises(TopologyError):
            tree.graft([node_id("S"), node_id("D")])  # no S-D link

    def test_graft_relay_only(self, fig1):
        tree = MulticastTree(fig1, node_id("S"))
        tree.graft([node_id("S"), node_id("A")], member=False)
        assert tree.is_on_tree(node_id("A"))
        assert not tree.is_member(node_id("A"))


class TestQueries:
    def test_path_from_source(self, fig1_tree):
        assert fig1_tree.path_from_source(node_id("C")) == [
            node_id("S"),
            node_id("A"),
            node_id("C"),
        ]

    def test_path_of_off_tree_node_rejected(self, fig1_tree):
        with pytest.raises(NotOnTreeError):
            fig1_tree.path_from_source(node_id("B"))

    def test_delay_from_source(self, fig1_tree):
        assert fig1_tree.delay_from_source(node_id("C")) == 2.0

    def test_tree_cost(self, fig1_tree):
        # links S-A (1), A-C (1), A-D (1)
        assert fig1_tree.tree_cost() == 3.0

    def test_tree_links(self, fig1_tree):
        assert fig1_tree.tree_links() == {(0, 1), (1, 3), (1, 4)}

    def test_subtree_nodes(self, fig1_tree):
        assert fig1_tree.subtree_nodes(node_id("A")) == {
            node_id("A"),
            node_id("C"),
            node_id("D"),
        }

    def test_subtree_member_count(self, fig1_tree):
        assert fig1_tree.subtree_member_count(node_id("A")) == 2
        assert fig1_tree.subtree_member_count(node_id("C")) == 1
        assert fig1_tree.subtree_member_count(node_id("S")) == 2

    def test_interface_counts(self, fig1_tree):
        counts = fig1_tree.downstream_interface_counts(node_id("A"))
        assert counts == {node_id("C"): 1, node_id("D"): 1}

    def test_contains(self, fig1_tree):
        assert node_id("A") in fig1_tree
        assert node_id("B") not in fig1_tree


class TestPrune:
    def test_prune_leaf_removes_branch(self, fig1_tree):
        removed = fig1_tree.prune(node_id("C"))
        assert removed == [node_id("C")]
        assert not fig1_tree.is_on_tree(node_id("C"))
        check_tree_invariants(fig1_tree)

    def test_prune_cascades_through_relays(self, fig4):
        tree = MulticastTree(fig4, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
        removed = tree.prune(node_id("E"))
        assert removed == [node_id("E"), node_id("D"), node_id("A")]
        assert tree.on_tree_nodes() == [node_id("S")]

    def test_prune_stops_at_shared_relay(self, fig1_tree):
        fig1_tree.prune(node_id("D"))
        # A still serves C.
        assert fig1_tree.is_on_tree(node_id("A"))
        assert fig1_tree.is_member(node_id("C"))

    def test_prune_interior_member_keeps_relaying(self, fig4):
        tree = MulticastTree(fig4, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("D")])
        tree.graft([node_id("D"), node_id("E")])
        removed = tree.prune(node_id("D"))
        assert removed == []  # D still relays to E
        assert tree.is_on_tree(node_id("D"))
        assert not tree.is_member(node_id("D"))

    def test_prune_non_member_rejected(self, fig1_tree):
        with pytest.raises(MulticastError):
            fig1_tree.prune(node_id("B"))


class TestMoveSubtree:
    def test_move_leaf(self, fig1_tree, fig1):
        # Move D from under A to under C (link C-D exists).
        fig1_tree.move_subtree(node_id("D"), [node_id("C"), node_id("D")])
        assert fig1_tree.parent(node_id("D")) == node_id("C")
        check_tree_invariants(fig1_tree)

    def test_move_carries_subtree(self, fig4):
        tree = MulticastTree(fig4, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
        tree.graft([node_id("S"), node_id("B"), node_id("G")])
        # Move D (with child E) under F via B: B-F link exists.
        tree.move_subtree(node_id("D"), [node_id("B"), node_id("F"), node_id("D")])
        assert tree.parent(node_id("D")) == node_id("F")
        assert tree.parent(node_id("E")) == node_id("D")  # subtree intact
        assert not tree.is_on_tree(node_id("A"))  # dead branch released
        check_tree_invariants(tree)

    def test_move_rejects_merge_inside_subtree(self, fig4):
        tree = MulticastTree(fig4, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
        with pytest.raises(MulticastError):
            tree.move_subtree(node_id("D"), [node_id("E"), node_id("D")])

    def test_move_source_rejected(self, fig1_tree):
        with pytest.raises(MulticastError):
            fig1_tree.move_subtree(node_id("S"), [node_id("A"), node_id("S")])

    def test_move_rejects_on_tree_interior(self, fig1_tree, fig1):
        # Path S -> A -> D has on-tree interior A; the move must go through
        # a fresh path only.
        with pytest.raises(MulticastError):
            fig1_tree.move_subtree(
                node_id("D"), [node_id("S"), node_id("A"), node_id("D")]
            )


class TestFailureAnalysis:
    def test_affected_by(self, fig1_tree):
        assert fig1_tree.affected_by(FailureSet.links((0, 1)))
        assert not fig1_tree.affected_by(FailureSet.links((0, 2)))
        assert fig1_tree.affected_by(FailureSet.nodes(node_id("A")))

    def test_surviving_component(self, fig1_tree):
        surviving = fig1_tree.surviving_component(FailureSet.links((1, 4)))
        assert surviving == {node_id("S"), node_id("A"), node_id("C")}

    def test_source_failure_kills_everything(self, fig1_tree):
        assert fig1_tree.surviving_component(FailureSet.nodes(node_id("S"))) == set()

    def test_disconnected_members(self, fig1_tree):
        failure = FailureSet.links((0, 1))  # S-A: both C and D cut off
        assert fig1_tree.disconnected_members(failure) == [
            node_id("C"),
            node_id("D"),
        ]

    def test_copy_independent(self, fig1_tree):
        clone = fig1_tree.copy()
        clone.prune(node_id("C"))
        assert fig1_tree.is_member(node_id("C"))
        assert not clone.is_member(node_id("C"))
