"""Tests for Dijkstra SPF, tie-breaking, failure masking and barriers."""

import networkx as nx
import pytest

from repro.errors import NoPathError, RoutingError, TopologyError
from repro.graph.topology import Topology
from repro.routing.failure_view import FailureSet
from repro.routing.spf import (
    dijkstra,
    dijkstra_with_barriers,
    shortest_path,
    spf_distance,
)


class TestBasics:
    def test_trivial_source(self, triangle):
        paths = dijkstra(triangle, 0)
        assert paths.distance(0) == 0.0
        assert paths.path_to(0) == [0]

    def test_shortest_path_simple(self, triangle):
        # 0-1 (1.0) + 1-2 (2.0) = 3.0 > direct 0-2 (2.5)
        assert shortest_path(triangle, 0, 2) == [0, 2]
        assert spf_distance(triangle, 0, 2) == 2.5

    def test_path_through_intermediate(self, fig1):
        assert shortest_path(fig1, 0, 4) == [0, 1, 4]  # S->A->D

    def test_next_hop(self, fig1):
        paths = dijkstra(fig1, 0)
        assert paths.next_hop(4) == 1

    def test_next_hop_of_source_rejected(self, fig1):
        with pytest.raises(RoutingError):
            dijkstra(fig1, 0).next_hop(0)

    def test_unknown_source_rejected(self, triangle):
        with pytest.raises(TopologyError):
            dijkstra(triangle, 99)

    def test_unknown_target_rejected(self, triangle):
        with pytest.raises(TopologyError):
            shortest_path(triangle, 0, 99)

    def test_unknown_weight_rejected(self, triangle):
        with pytest.raises(RoutingError):
            dijkstra(triangle, 0, weight="hops")

    def test_cost_weight(self):
        topo = Topology()
        for n in range(3):
            topo.add_node(n)
        topo.add_link(0, 1, delay=1.0, cost=10.0)
        topo.add_link(1, 2, delay=1.0, cost=10.0)
        topo.add_link(0, 2, delay=5.0, cost=1.0)
        assert shortest_path(topo, 0, 2, weight="delay") == [0, 1, 2]
        assert shortest_path(topo, 0, 2, weight="cost") == [0, 2]


class TestDeterministicTies:
    def test_equal_paths_prefer_smaller_predecessor(self):
        """Diamond: 0-1-3 and 0-2-3 both cost 2; path via node 1 wins."""
        topo = Topology()
        for n in range(4):
            topo.add_node(n)
        topo.add_link(0, 1, delay=1.0)
        topo.add_link(0, 2, delay=1.0)
        topo.add_link(1, 3, delay=1.0)
        topo.add_link(2, 3, delay=1.0)
        assert shortest_path(topo, 0, 3) == [0, 1, 3]

    def test_tie_break_is_stable_across_runs(self, waxman50):
        a = dijkstra(waxman50, 0)
        b = dijkstra(waxman50, 0)
        assert a.parent == b.parent


class TestFailureMasking:
    def test_failed_link_avoided(self, fig1):
        failures = FailureSet.links((1, 4))  # A-D
        assert shortest_path(fig1, 0, 4, failures=failures) == [0, 2, 4]

    def test_failed_node_avoided(self, fig1):
        failures = FailureSet.nodes(1)  # A dead
        path = shortest_path(fig1, 0, 4, failures=failures)
        assert 1 not in path

    def test_unreachable_after_failure(self, line4):
        failures = FailureSet.links((1, 2))
        paths = dijkstra(line4, 0, failures=failures)
        assert paths.reachable(1)
        assert not paths.reachable(3)
        with pytest.raises(NoPathError):
            paths.path_to(3)

    def test_failed_source_reaches_nothing(self, fig1):
        paths = dijkstra(fig1, 0, failures=FailureSet.nodes(0))
        assert paths.dist == {}


class TestAgainstNetworkx:
    """Cross-validate distances against networkx on random topologies."""

    @pytest.mark.parametrize("source", [0, 7, 23])
    def test_distances_match(self, waxman50, source):
        ours = dijkstra(waxman50, source)
        reference = nx.single_source_dijkstra_path_length(
            waxman50.graph_view(), source, weight="delay"
        )
        assert set(ours.dist) == set(reference)
        for node, dist in reference.items():
            assert ours.dist[node] == pytest.approx(dist)

    def test_path_lengths_are_consistent(self, waxman50):
        paths = dijkstra(waxman50, 3)
        for node in list(paths.dist)[:20]:
            assert waxman50.path_delay(paths.path_to(node)) == pytest.approx(
                paths.dist[node]
            )


class TestBarriers:
    def test_barrier_reachable_but_not_traversable(self, line4):
        # 0-1-2-3; barrier at 1 blocks everything beyond it.
        paths = dijkstra_with_barriers(line4, 0, barriers={1})
        assert paths.reachable(1)
        assert not paths.reachable(2)

    def test_barrier_forces_detour(self, fig1):
        """From D, with A as a barrier, S is reached via B."""
        paths = dijkstra_with_barriers(fig1, 4, barriers={1, 0})
        assert paths.path_to(0) == [4, 2, 0]

    def test_source_barrier_is_ignored(self, line4):
        paths = dijkstra_with_barriers(line4, 1, barriers={1})
        assert paths.reachable(3)

    def test_no_barriers_equals_dijkstra(self, waxman50):
        plain = dijkstra(waxman50, 5)
        barred = dijkstra_with_barriers(waxman50, 5, barriers=set())
        assert plain.dist == barred.dist

    def test_barriers_respect_failures(self, fig1):
        paths = dijkstra_with_barriers(
            fig1, 4, barriers={0}, failures=FailureSet.links((2, 4))
        )
        # D-B failed, A not a barrier: reach S through A.
        assert paths.path_to(0) == [4, 1, 0]
