"""Unit tests for the compiled CSR routing substrate.

Covers the CSR compilation itself, the tie-break regression the kernel
rewrite fixed (the historical ``u < (parent[v] or -1)`` comparison, which
collapsed a legitimate predecessor of node id ``0`` to the sentinel), the
barrier-search edge cases, and the failure-aware route cache with its
single-failure reuse proofs.
"""

import pytest

from repro.graph.topology import Topology
from repro.obs import Observability
from repro.routing.csr import CsrGraph, compile_failures, csr_dijkstra
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.route_cache import RouteCache
from repro.routing.spf import dijkstra, dijkstra_with_barriers


def build(links, nodes=None) -> Topology:
    topo = Topology("test")
    seen = list(nodes) if nodes is not None else []
    for u, v, *_ in links:
        for n in (u, v):
            if n not in seen:
                seen.append(n)
    for n in seen:
        topo.add_node(n)
    for u, v, delay in links:
        topo.add_link(u, v, delay=delay)
    return topo


class TestCsrCompilation:
    def test_layout_matches_topology(self):
        topo = build([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 2.5)])
        csr = topo.csr()
        assert csr.num_nodes == 3
        assert csr.num_arcs == 6  # two directed arcs per link
        assert csr.node_ids == [0, 1, 2]
        # Node 0's slice: neighbours 1 and 2, pre-sorted.
        row = [csr.nbr[a] for a in range(csr.indptr[0], csr.indptr[1])]
        assert row == [csr.index_of[1], csr.index_of[2]]
        assert csr.arcs_of_edge.keys() == {(0, 1), (1, 2), (0, 2)}

    def test_compiled_form_cached_and_invalidated(self):
        topo = build([(0, 1, 1.0)])
        first = topo.csr()
        assert topo.csr() is first
        topo.add_node(2)
        again = topo.csr()
        assert again is not first
        assert again.token == topo.cache_token()

    def test_failure_mask_compilation(self):
        topo = build([(0, 1, 1.0), (1, 2, 2.0)])
        csr = topo.csr()
        assert compile_failures(csr, NO_FAILURES) is None
        mask = compile_failures(
            csr, FailureSet(failed_links=frozenset({(0, 1)}),
                            failed_nodes=frozenset({2}))
        )
        node_dead, arc_blocked = mask
        assert node_dead[csr.index_of[2]] == 1
        a, b = csr.arcs_of_edge[(0, 1)]
        assert arc_blocked[a] == 1 and arc_blocked[b] == 1
        assert sum(arc_blocked) == 2

    def test_kernel_on_empty_failure_free_graph(self):
        topo = build([], nodes=[0])
        csr = topo.csr()
        dist, parent, order = csr_dijkstra(csr, 0, csr.delay, None)
        assert dist == [0.0] and parent == [-1] and order == [0]


class TestTieBreakRegression:
    """The ``u < (parent[v] or -1)`` bug, pinned from both sides."""

    def test_tie_through_node_zero_is_kept(self):
        # Diamond with node 0 as one of two equal-delay predecessors of 3:
        # 2→0→3 and 2→1→3, both delay 2.  The smaller predecessor (0) must
        # win and — critically — must survive the later tie offer from 1.
        topo = build([(2, 0, 1.0), (2, 1, 1.0), (0, 3, 1.0), (1, 3, 1.0)])
        paths = dijkstra(topo, 2)
        assert paths.dist[3] == pytest.approx(2.0)
        assert paths.parent[3] == 0
        assert paths.path_to(3) == [2, 0, 3]

    def test_tie_against_parent_zero_with_negative_id(self):
        # The buggy comparison read ``u < (0 or -1)`` = ``u < -1`` when the
        # incumbent parent was node 0, so the legitimate replacement by
        # node -1 (equal delay, smaller id) was refused.  Node ids are
        # plain ints; negative ids are valid and must tie-break correctly.
        topo = build([(5, 0, 1.0), (5, -1, 2.0), (0, 9, 2.0), (-1, 9, 1.0)])
        paths = dijkstra(topo, 5)
        assert paths.dist[9] == pytest.approx(3.0)
        assert paths.parent[9] == -1
        assert paths.path_to(9) == [5, -1, 9]

    def test_source_parent_never_replaced_by_tie(self):
        # A zero-length tie can never occur (weights are positive), but a
        # cycle back to the source must leave its parent as None.
        topo = build([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)])
        paths = dijkstra(topo, 0)
        assert paths.parent[0] is None


class TestBarrierEdgeCases:
    def test_source_itself_in_barriers_searches_normally(self):
        topo = build([(0, 1, 1.0), (1, 2, 1.0)])
        paths = dijkstra_with_barriers(topo, 0, barriers={0, 2})
        assert paths.dist[0] == 0.0
        assert paths.dist[1] == pytest.approx(1.0)
        assert paths.dist[2] == pytest.approx(2.0)  # endpoint, reachable

    def test_all_candidates_behind_barriers(self):
        # Line 0—1—2 with 1 a barrier: 1 is settled as an endpoint but not
        # traversed, so 2 is unreachable — reachable-minus-source is just
        # the barrier itself.
        topo = build([(0, 1, 1.0), (1, 2, 1.0)])
        paths = dijkstra_with_barriers(topo, 0, barriers={1})
        assert set(paths.dist) == {0, 1}
        assert paths.path_to(1) == [0, 1]

    def test_fully_cut_off_source(self):
        # Every neighbour of the source is a barrier: nothing beyond the
        # first ring is reachable.
        topo = build([(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)])
        paths = dijkstra_with_barriers(topo, 0, barriers={1, 2})
        assert set(paths.dist) == {0, 1, 2}

    def test_barrier_settled_not_traversed_under_link_failure(self):
        # Square 0—1—3, 0—2—3 with barrier 1.  Failing link (0, 2) forces
        # every route through 1, which may terminate there but not relay:
        # 3 becomes unreachable while 1 stays reachable via the surviving
        # direct link.
        topo = build([(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
        paths = dijkstra_with_barriers(
            topo, 0, barriers={1}, failures=FailureSet.links((0, 2))
        )
        assert set(paths.dist) == {0, 1}
        assert paths.dist[1] == pytest.approx(1.0)

    def test_barrier_reached_only_through_failed_link_is_unreachable(self):
        topo = build([(0, 1, 1.0), (1, 2, 1.0)])
        paths = dijkstra_with_barriers(
            topo, 0, barriers={1}, failures=FailureSet.links((0, 1))
        )
        assert set(paths.dist) == {0}


class TestFailureAwareRouteCache:
    def diamond(self) -> Topology:
        # 0→1→3 is the shortest route to 3; link (2, 3) is off that tree.
        return build([(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)])

    def test_failure_scenarios_get_distinct_entries(self):
        topo = self.diamond()
        cache = RouteCache()
        free = cache.shortest_paths(topo, 0)
        failed = cache.shortest_paths(
            topo, 0, failures=FailureSet.links((0, 1))
        )
        assert failed is not free
        assert failed.path_to(3) == [0, 2, 3]
        # Both scenarios are now warm.
        assert cache.shortest_paths(topo, 0) is free
        assert (
            cache.shortest_paths(topo, 0, failures=FailureSet.links((0, 1)))
            is failed
        )
        assert cache.stats["hits"] == 2 and cache.stats["misses"] == 2

    def test_reuse_proof_for_off_tree_link(self):
        topo = self.diamond()
        cache = RouteCache()
        free = cache.shortest_paths(topo, 0)
        # (2, 3) is not a tree edge of the failure-free SPF from 0, so the
        # cached result is provably reusable — same object, no recompute.
        reused = cache.shortest_paths(
            topo, 0, failures=FailureSet.links((2, 3))
        )
        assert reused is free
        assert cache.stats["reuse_proofs"] == 1
        # Counted as a miss (the scenario key was new), not a hit.
        assert cache.stats["hits"] == 0 and cache.stats["misses"] == 2

    def test_on_tree_link_failure_recomputes(self):
        topo = self.diamond()
        cache = RouteCache()
        free = cache.shortest_paths(topo, 0)
        recomputed = cache.shortest_paths(
            topo, 0, failures=FailureSet.links((1, 3))
        )
        assert recomputed is not free
        assert recomputed.path_to(3) == [0, 2, 3]
        assert cache.stats["reuse_proofs"] == 0

    def test_reuse_proof_for_unreachable_failed_node(self):
        topo = build([(0, 1, 1.0)], nodes=[0, 1, 2])  # node 2 isolated
        cache = RouteCache()
        free = cache.shortest_paths(topo, 0)
        assert 2 not in free.dist
        reused = cache.shortest_paths(topo, 0, failures=FailureSet.nodes(2))
        assert reused is free
        assert cache.stats["reuse_proofs"] == 1

    def test_reachable_failed_node_recomputes(self):
        topo = self.diamond()
        cache = RouteCache()
        free = cache.shortest_paths(topo, 0)
        recomputed = cache.shortest_paths(topo, 0, failures=FailureSet.nodes(1))
        assert recomputed is not free
        assert recomputed.path_to(3) == [0, 2, 3]
        assert cache.stats["reuse_proofs"] == 0

    def test_multi_element_failures_never_reuse(self):
        topo = self.diamond()
        cache = RouteCache()
        cache.shortest_paths(topo, 0)
        # Both links are off-tree individually, but multi-element
        # scenarios always recompute (the proof only covers singletons).
        cache.shortest_paths(
            topo, 0, failures=FailureSet.links((2, 3), (0, 2))
        )
        assert cache.stats["reuse_proofs"] == 0

    def test_baseline_computed_on_demand_for_failure_first_lookup(self):
        topo = self.diamond()
        cache = RouteCache()
        # First-ever lookup already carries a failure: the baseline is
        # built internally (no extra caller-facing miss) and the reuse
        # proof still applies.
        reused = cache.shortest_paths(
            topo, 0, failures=FailureSet.links((2, 3))
        )
        assert cache.stats["misses"] == 1
        assert cache.stats["reuse_proofs"] == 1
        # The internally-built baseline is cached and served on request.
        assert cache.shortest_paths(topo, 0) is reused
        assert cache.stats["hits"] == 1

    def test_obs_counters_and_hit_rate_gauge(self):
        topo = self.diamond()
        cache = RouteCache()
        obs = Observability()
        cache.shortest_paths(topo, 0, obs=obs)
        cache.shortest_paths(topo, 0, obs=obs)
        cache.shortest_paths(
            topo, 0, failures=FailureSet.links((2, 3)), obs=obs
        )
        snapshot = obs.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["cache.routes.hits"] == 1
        assert counters["cache.routes.misses"] == 2
        assert counters["cache.routes.reuse_proofs"] == 1
        gauges = snapshot["gauges"]
        assert gauges["cache.routes.hit_rate"]["value"] == pytest.approx(1 / 3)
