"""Tests for Suurballe/Bhandari link-disjoint path pairs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NoPathError, TopologyError
from repro.graph.generators import node_id, ring_topology
from repro.graph.topology import Topology
from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.routing.disjoint import link_disjoint_paths
from repro.routing.failure_view import FailureSet


@pytest.fixture
def trap():
    """The classic Suurballe trap: the shortest path blocks the naive
    second path; only rerouting the first path yields a disjoint pair.

    0 -1- 1 -1- 3
    0 -2- 2 -2- 3,  1 -0.5- 2
    Shortest 0→3 is 0-1-3 (2).  Removing its links leaves 0-2-3 (4), so a
    greedy two-pass works here; the interesting case adds the cheap 1-2
    bridge making the shortest path 0-1-2-3 in a variant.
    """
    topo = Topology("trap")
    for n in range(4):
        topo.add_node(n)
    topo.add_link(0, 1, delay=1.0)
    topo.add_link(1, 3, delay=1.0)
    topo.add_link(0, 2, delay=2.0)
    topo.add_link(2, 3, delay=2.0)
    topo.add_link(1, 2, delay=0.5)
    return topo


class TestDisjointPairs:
    def test_simple_ring(self):
        ring = ring_topology(6)
        pair = link_disjoint_paths(ring, 0, 3)
        assert pair.shared_links() == set()
        assert pair.primary == (0, 1, 2, 3)
        assert pair.backup == (0, 5, 4, 3)
        assert pair.total_delay == 6.0

    def test_trap_graph(self, trap):
        pair = link_disjoint_paths(trap, 0, 3)
        assert pair.shared_links() == set()
        assert pair.primary_delay <= pair.backup_delay
        # Optimal pair: 0-1-3 (2) and 0-2-3 (4): total 6.
        assert pair.total_delay == pytest.approx(6.0)

    def test_suurballe_rerouting_needed(self):
        """Shortest path hogs links both pairs need; the algorithm must
        reroute it through the reverse-arc trick."""
        topo = Topology("reroute")
        for n in range(6):
            topo.add_node(n)
        # Shortest: 0-2-3-5 (3).  Greedy removal would then leave only
        # 0-1-4-5 if it exists... construct so that the optimal pair is
        # 0-2-4-5 and 0-1-3-5, sharing nothing with each other but both
        # crossing the shortest path's middle link 2-3 region.
        topo.add_link(0, 2, delay=1.0)
        topo.add_link(2, 3, delay=1.0)
        topo.add_link(3, 5, delay=1.0)
        topo.add_link(0, 1, delay=2.0)
        topo.add_link(1, 3, delay=2.0)
        topo.add_link(2, 4, delay=2.0)
        topo.add_link(4, 5, delay=2.0)
        pair = link_disjoint_paths(topo, 0, 5)
        assert pair.shared_links() == set()
        paths = {pair.primary, pair.backup}
        assert paths == {(0, 2, 4, 5), (0, 1, 3, 5)}

    def test_total_delay_is_minimal(self, trap):
        """Cross-check minimal total against brute force on a tiny graph."""
        import itertools

        pair = link_disjoint_paths(trap, 0, 3)

        # Brute force all simple-path pairs.
        def simple_paths(topo, s, t, path=None):
            path = path or [s]
            if path[-1] == t:
                yield list(path)
                return
            for nxt in topo.neighbors(path[-1]):
                if nxt not in path:
                    path.append(nxt)
                    yield from simple_paths(topo, s, t, path)
                    path.pop()

        best = float("inf")
        all_paths = list(simple_paths(trap, 0, 3))
        for p1, p2 in itertools.combinations(all_paths, 2):
            links1 = {tuple(sorted(e)) for e in zip(p1, p1[1:])}
            links2 = {tuple(sorted(e)) for e in zip(p2, p2[1:])}
            if links1 & links2:
                continue
            best = min(best, trap.path_delay(p1) + trap.path_delay(p2))
        assert pair.total_delay == pytest.approx(best)

    def test_bridge_graph_has_no_pair(self, line4):
        with pytest.raises(NoPathError):
            link_disjoint_paths(line4, 0, 3)

    def test_figure1_pair_for_d(self, fig1):
        pair = link_disjoint_paths(fig1, node_id("S"), node_id("D"))
        assert pair.shared_links() == set()
        assert pair.primary == (node_id("S"), node_id("A"), node_id("D"))

    def test_respects_failures(self, fig1):
        failure = FailureSet.links((node_id("S"), node_id("A")))
        # Without S-A, S only has one exit (S-B): no disjoint pair to D.
        with pytest.raises(NoPathError):
            link_disjoint_paths(fig1, node_id("S"), node_id("D"), failures=failure)

    def test_same_endpoints_rejected(self, fig1):
        with pytest.raises(TopologyError):
            link_disjoint_paths(fig1, 0, 0)

    def test_unknown_endpoint_rejected(self, fig1):
        with pytest.raises(TopologyError):
            link_disjoint_paths(fig1, 0, 99)

    def test_random_graphs_pairs_are_disjoint(self, waxman50):
        found = 0
        for target in (10, 20, 30, 40):
            try:
                pair = link_disjoint_paths(waxman50, 0, target)
            except NoPathError:
                continue
            found += 1
            assert pair.shared_links() == set()
            assert pair.primary[0] == 0 and pair.primary[-1] == target
            assert pair.backup[0] == 0 and pair.backup[-1] == target
            assert pair.primary_delay <= pair.backup_delay
        assert found > 0


class TestTieBreakConvention:
    """The pair's primary/backup ordering follows the scalar dijkstra
    convention: smaller delay first, equal delays broken by reversed node
    sequence (the smaller-predecessor-id rule seen from the target)."""

    def test_equal_delay_tie_broken_by_reversed_sequence(self):
        # A 4-ring with uniform delays: both 0→2 paths cost 2.0; the
        # convention picks 0-1-2 (reversed (2,1,0)) over 0-3-2
        # (reversed (2,3,0)) as primary.
        ring = ring_topology(4)
        pair = link_disjoint_paths(ring, 0, 2)
        assert pair.primary_delay == pair.backup_delay
        assert tuple(reversed(pair.primary)) < tuple(reversed(pair.backup))
        assert pair.primary == (0, 1, 2)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        target=st.integers(min_value=1, max_value=24),
    )
    def test_ordering_convention_on_random_graphs(self, seed, target):
        topology = waxman_topology(
            WaxmanConfig(n=25, alpha=0.5, beta=0.4, seed=seed)
        ).topology
        try:
            pair = link_disjoint_paths(topology, 0, target)
        except (NoPathError, TopologyError):
            return
        assert pair.primary_delay <= pair.backup_delay
        if pair.primary_delay == pair.backup_delay:
            assert tuple(reversed(pair.primary)) < tuple(reversed(pair.backup))
