"""Tests for Yen's k-shortest loopless paths."""

import pytest

from repro.errors import ConfigurationError, NoPathError
from repro.graph.topology import Topology
from repro.routing.failure_view import FailureSet
from repro.routing.ksp import k_shortest_paths


@pytest.fixture
def diamond():
    """0-1-3 (2), 0-2-3 (3), 0-3 direct (4)."""
    topo = Topology("diamond")
    for n in range(4):
        topo.add_node(n)
    topo.add_link(0, 1, delay=1.0)
    topo.add_link(1, 3, delay=1.0)
    topo.add_link(0, 2, delay=1.5)
    topo.add_link(2, 3, delay=1.5)
    topo.add_link(0, 3, delay=4.0)
    return topo


class TestKsp:
    def test_first_path_is_shortest(self, diamond):
        paths = k_shortest_paths(diamond, 0, 3, k=1)
        assert paths == [[0, 1, 3]]

    def test_three_distinct_paths_in_order(self, diamond):
        paths = k_shortest_paths(diamond, 0, 3, k=3)
        assert paths == [[0, 1, 3], [0, 2, 3], [0, 3]]

    def test_lengths_nondecreasing(self, diamond):
        paths = k_shortest_paths(diamond, 0, 3, k=3)
        lengths = [diamond.path_delay(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_fewer_paths_than_k(self, diamond):
        paths = k_shortest_paths(diamond, 0, 3, k=10)
        assert len(paths) == 3  # the graph only has three loopless routes

    def test_paths_are_loopless(self, waxman50):
        for path in k_shortest_paths(waxman50, 0, 30, k=5):
            assert len(path) == len(set(path))

    def test_paths_are_distinct(self, waxman50):
        paths = k_shortest_paths(waxman50, 2, 41, k=6)
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_respects_failures(self, diamond):
        paths = k_shortest_paths(
            diamond, 0, 3, k=3, failures=FailureSet.links((0, 1))
        )
        assert [0, 1, 3] not in paths
        assert paths[0] == [0, 2, 3]

    def test_disconnected_raises(self, line4):
        with pytest.raises(NoPathError):
            k_shortest_paths(line4, 0, 3, k=2, failures=FailureSet.links((1, 2)))

    def test_bad_k_rejected(self, diamond):
        with pytest.raises(ConfigurationError):
            k_shortest_paths(diamond, 0, 3, k=0)

    def test_single_node_graph(self):
        topo = Topology()
        topo.add_node(0)
        assert k_shortest_paths(topo, 0, 0, k=2) == [[0]]
