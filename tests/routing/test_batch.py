"""Unit tests for the multi-root batch kernel and cache warming.

The property suite (``tests/properties/test_batch_equivalence``) carries
the bit-identity contract; these tests pin the edge cases and the
plumbing: dead/duplicate roots, empty batches, lazy view caching, obs
accounting, and ``RouteCache.warm_batch`` semantics (peek-skip, reuse
proofs, batch inserts, untouched hit/miss counters).
"""

import pytest

from repro.graph.topology import Topology
from repro.obs import Observability
from repro.routing.batch import BatchShortestPaths, dijkstra_multi
from repro.routing.failure_view import FailureSet
from repro.routing.route_cache import RouteCache
from repro.routing.spf import dijkstra


def build(links, nodes=None) -> Topology:
    topo = Topology("test")
    seen = list(nodes) if nodes is not None else []
    for u, v, *_ in links:
        for n in (u, v):
            if n not in seen:
                seen.append(n)
    for n in seen:
        topo.add_node(n)
    for u, v, delay in links:
        topo.add_link(u, v, delay=delay)
    return topo


def diamond() -> Topology:
    # 0→1→3 is the shortest route to 3; link (2, 3) is off that tree.
    return build([(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)])


class TestDijkstraMulti:
    def test_duplicate_roots_collapse_to_one_row(self):
        topo = diamond()
        batch = dijkstra_multi(topo, [0, 2, 0, 2, 0])
        assert batch.roots == [0, 2]
        assert len(batch) == 2
        assert batch.paths(0).dist == dijkstra(topo, 0).dist

    def test_dead_root_yields_empty_result(self):
        topo = diamond()
        failures = FailureSet.nodes(1)
        batch = dijkstra_multi(topo, [0, 1], failures=failures)
        dead = batch.paths(1)
        assert dead.source == 1 and dead.dist == {} and dead.parent == {}
        # Live roots still route around the failed node.
        assert batch.paths(0).path_to(3) == [0, 2, 3]

    def test_empty_roots(self):
        batch = dijkstra_multi(diamond(), [])
        assert batch.roots == [] and len(batch) == 0

    def test_views_cached_and_lazy(self):
        topo = diamond()
        batch = dijkstra_multi(topo, [0, 2])
        first = batch.paths(0)
        assert batch.paths(0) is first
        assert 2 in batch and 3 not in batch
        with pytest.raises(KeyError):
            batch.paths(3)  # not part of the batch

    def test_unknown_root_raises(self):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            dijkstra_multi(diamond(), [99])

    def test_obs_accounting(self):
        topo = diamond()
        obs = Observability()
        dijkstra_multi(topo, [0, 2, 0], obs=obs)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["routing.batch.calls"] == 1
        assert counters["routing.batch.roots"] == 2  # dedup before count
        assert counters["routing.batch.rounds"] >= 1

    def test_isolated_node_topology(self):
        topo = build([], nodes=[0, 1])
        batch = dijkstra_multi(topo, [0, 1])
        assert batch.paths(0).dist == {0: 0.0}
        assert batch.paths(1).dist == {1: 0.0}

    def test_result_type_is_batch(self):
        assert isinstance(dijkstra_multi(diamond(), [0]), BatchShortestPaths)


class TestWarmBatch:
    def test_warmed_entries_served_as_hits(self):
        topo = diamond()
        cache = RouteCache()
        inserted = cache.warm_batch(topo, [0, 2, 0])
        assert inserted == 2  # deduped
        a = cache.shortest_paths(topo, 0)
        b = cache.shortest_paths(topo, 2)
        assert a.dist == dijkstra(topo, 0).dist
        assert b.dist == dijkstra(topo, 2).dist
        # Warming itself is not a lookup; both lookups were hits.
        assert cache.stats["hits"] == 2 and cache.stats["misses"] == 0

    def test_existing_entries_skipped(self):
        topo = diamond()
        cache = RouteCache()
        before = cache.shortest_paths(topo, 0)
        assert cache.warm_batch(topo, [0]) == 0
        assert cache.shortest_paths(topo, 0) is before

    def test_warmed_identical_to_per_call(self):
        topo = diamond()
        failures = FailureSet.links((1, 3))
        warmed = RouteCache()
        warmed.warm_batch(topo, [0, 2], failures=failures)
        plain = RouteCache()
        for root in (0, 2):
            got = warmed.shortest_paths(topo, root, failures=failures)
            want = plain.shortest_paths(topo, root, failures=failures)
            assert got.dist == want.dist and got.parent == want.parent
            assert list(got.dist) == list(want.dist)

    def test_reuse_proof_shares_cached_baseline(self):
        topo = diamond()
        cache = RouteCache()
        baseline = cache.shortest_paths(topo, 0)
        # (2, 3) is off the SPF tree from 0 — the warm path must apply
        # the same reuse proof the per-call API does: no kernel run, the
        # baseline object itself is stored under the scenario key.
        inserted = cache.warm_batch(topo, [0], failures=FailureSet.links((2, 3)))
        assert inserted == 1
        assert cache.stats["reuse_proofs"] == 1
        assert (
            cache.shortest_paths(topo, 0, failures=FailureSet.links((2, 3)))
            is baseline
        )

    def test_no_reuse_proof_without_cached_baseline(self):
        topo = diamond()
        cache = RouteCache()
        obs = Observability()
        # Cold cache: the proof needs a baseline, so the kernel runs.
        cache.warm_batch(topo, [0], failures=FailureSet.links((2, 3)), obs=obs)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["routing.batch.calls"] == 1
        assert counters["cache.routes.batch_inserts"] == 1
        assert cache.stats["reuse_proofs"] == 0

    def test_dead_roots_get_empty_entries(self):
        topo = diamond()
        cache = RouteCache()
        failures = FailureSet.nodes(0)
        assert cache.warm_batch(topo, [0, 2], failures=failures) == 2
        dead = cache.shortest_paths(topo, 0, failures=failures)
        assert dead.dist == {}
        assert cache.stats["hits"] == 1

    def test_obs_batch_inserts_counter(self):
        topo = diamond()
        cache = RouteCache()
        obs = Observability()
        cache.warm_batch(topo, [0, 1, 2], obs=obs)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["cache.routes.batch_inserts"] == 3
        assert "cache.routes.hits" not in counters
        assert "cache.routes.misses" not in counters
