"""Tests for the link-state database and the convergence model."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.link_state import (
    ConvergenceModel,
    LinkStateDatabase,
    flood_failure,
)


class TestLinkStateDatabase:
    def test_pristine_view_routes_through_future_failure(self, fig1):
        lsdb = LinkStateDatabase(4, fig1)
        assert lsdb.routing_table().next_hop(0) == 1

    def test_learning_failure_changes_route(self, fig1):
        lsdb = LinkStateDatabase(4, fig1)
        changed = lsdb.learn_failure(FailureSet.links((1, 4)))
        assert changed
        assert lsdb.routing_table().next_hop(0) == 2

    def test_learning_is_idempotent(self, fig1):
        lsdb = LinkStateDatabase(4, fig1)
        failure = FailureSet.links((1, 4))
        assert lsdb.learn_failure(failure)
        assert not lsdb.learn_failure(failure)

    def test_synchronization_check(self, fig1):
        lsdb = LinkStateDatabase(0, fig1)
        failure = FailureSet.links((0, 1)).union(FailureSet.nodes(3))
        assert lsdb.is_synchronized_with(NO_FAILURES)
        assert not lsdb.is_synchronized_with(failure)
        lsdb.learn_failure(failure)
        assert lsdb.is_synchronized_with(failure)

    def test_forget_all(self, fig1):
        lsdb = LinkStateDatabase(0, fig1)
        lsdb.learn_failure(FailureSet.nodes(1))
        lsdb.forget_all()
        assert lsdb.known_failures.is_empty

    def test_unknown_owner_rejected(self, fig1):
        with pytest.raises(TopologyError):
            LinkStateDatabase(99, fig1)


class TestConvergenceModel:
    def test_rejects_negative_parameters(self):
        with pytest.raises(ConfigurationError):
            ConvergenceModel(detection_delay=-1.0)

    def test_no_failure_converges_instantly(self, fig1):
        model = ConvergenceModel()
        times = model.convergence_times(fig1, NO_FAILURES)
        assert all(t == 0.0 for t in times.values())

    def test_convergence_after_detection_plus_spf(self, fig1):
        model = ConvergenceModel(detection_delay=30.0, spf_compute_time=1.0)
        times = model.convergence_times(fig1, FailureSet.links((0, 1)))
        # Every router needs the LSAs of *both* failure-adjacent routers
        # (max over origins), so nobody converges before detection + SPF.
        assert min(times.values()) >= 31.0
        # And flooding distance matters: the spread is non-trivial.
        assert max(times.values()) > min(times.values())

    def test_detection_dominates(self, fig1):
        model = ConvergenceModel(detection_delay=100.0)
        times = model.convergence_times(fig1, FailureSet.links((0, 1)))
        assert all(t >= 100.0 for t in times.values())

    def test_failed_node_not_reported(self, fig1):
        model = ConvergenceModel()
        times = model.convergence_times(fig1, FailureSet.nodes(1))
        assert 1 not in times

    def test_single_node_query(self, fig1):
        model = ConvergenceModel()
        t = model.convergence_time(fig1, FailureSet.links((0, 1)), 4)
        assert t > 0
        with pytest.raises(TopologyError):
            model.convergence_time(fig1, FailureSet.nodes(1), 1)

    def test_convergence_slower_than_local_detection(self, waxman50):
        """The paper's premise: far routers converge much later than the
        failure-adjacent ones detect — the window local recovery exploits."""
        model = ConvergenceModel(detection_delay=30.0)
        failure = FailureSet.links(tuple(waxman50.links()[0].key))
        times = model.convergence_times(waxman50, failure)
        assert max(times.values()) > 30.0


class TestFlooding:
    def test_flood_reaches_every_router(self, fig1):
        databases = {n: LinkStateDatabase(n, fig1) for n in fig1.nodes()}
        failure = FailureSet.links((0, 1))
        stats = flood_failure(fig1, databases, failure)
        for node, lsdb in databases.items():
            assert lsdb.is_synchronized_with(failure), f"node {node} stale"
        assert stats.lsa_messages > 0
        assert stats.touched_routers == set(fig1.nodes())

    def test_flood_does_not_cross_failures(self, line4):
        databases = {n: LinkStateDatabase(n, line4) for n in line4.nodes()}
        failure = FailureSet.links((1, 2))
        flood_failure(line4, databases, failure)
        # Both sides learn (each has an adjacent router), in this topology.
        assert databases[0].is_synchronized_with(failure)
        assert databases[3].is_synchronized_with(failure)

    def test_partitioned_router_stays_stale(self, line4):
        databases = {n: LinkStateDatabase(n, line4) for n in line4.nodes()}
        # Node 3's only link fails together with 1-2: node 3 is isolated
        # and hears nothing beyond its own adjacency.
        failure = FailureSet.links((1, 2))
        isolated = FailureSet.links((2, 3))
        flood = failure.union(isolated)
        flood_failure(line4, databases, flood)
        assert databases[0].is_synchronized_with(flood)
        # Node 3 is adjacent to (2,3) so it knows that one, and cannot know
        # more than its own adjacency tells it.
        assert databases[3].known_failures.link_failed(2, 3)
