"""Tests for FailureSet semantics."""

from repro.routing.failure_view import NO_FAILURES, FailureSet


class TestConstruction:
    def test_links_factory_canonicalizes(self):
        failures = FailureSet.links((5, 2))
        assert failures.link_failed(2, 5)
        assert failures.link_failed(5, 2)

    def test_nodes_factory(self):
        failures = FailureSet.nodes(3, 7)
        assert failures.node_failed(3)
        assert not failures.node_failed(4)

    def test_empty(self):
        assert NO_FAILURES.is_empty
        assert not FailureSet.links((0, 1)).is_empty


class TestUsability:
    def test_failed_link_unusable(self):
        failures = FailureSet.links((0, 1))
        assert not failures.link_usable(0, 1)
        assert failures.link_usable(1, 2)

    def test_failed_node_kills_incident_links(self):
        failures = FailureSet.nodes(1)
        assert not failures.link_usable(0, 1)
        assert not failures.link_usable(1, 2)
        assert failures.link_usable(0, 2)

    def test_path_affected_by_link(self):
        failures = FailureSet.links((1, 2))
        assert failures.path_affected([0, 1, 2, 3])
        assert not failures.path_affected([0, 1])

    def test_path_affected_by_node(self):
        failures = FailureSet.nodes(2)
        assert failures.path_affected([0, 1, 2])
        assert not failures.path_affected([0, 1])

    def test_empty_path_unaffected(self):
        assert not FailureSet.nodes(1).path_affected([])


class TestAlgebra:
    def test_union(self):
        combined = FailureSet.links((0, 1)).union(FailureSet.nodes(5))
        assert combined.link_failed(0, 1)
        assert combined.node_failed(5)

    def test_union_is_non_destructive(self):
        a = FailureSet.links((0, 1))
        b = FailureSet.links((2, 3))
        a.union(b)
        assert not a.link_failed(2, 3)

    def test_immutability_via_hash(self):
        # frozen dataclass with frozensets: usable as dict keys
        a = FailureSet.links((0, 1))
        b = FailureSet.links((0, 1))
        assert a == b
        assert len({a, b}) == 1

    def test_iteration_sorted(self):
        failures = FailureSet.links((9, 8), (1, 2)).union(FailureSet.nodes(7, 3))
        assert list(failures.iter_failed_links()) == [(1, 2), (8, 9)]
        assert list(failures.iter_failed_nodes()) == [3, 7]

    def test_describe(self):
        assert NO_FAILURES.describe() == "no failures"
        text = FailureSet.links((0, 1)).union(FailureSet.nodes(4)).describe()
        assert "0-1" in text and "4" in text
