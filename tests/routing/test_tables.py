"""Tests for routing tables."""

import pytest

from repro.errors import NoPathError
from repro.routing.failure_view import FailureSet
from repro.routing.tables import build_all_tables, build_routing_table


class TestRoutingTable:
    def test_next_hops_match_spf(self, fig1):
        table = build_routing_table(fig1, 0)
        assert table.next_hop(4) == 1  # S reaches D via A
        assert table.next_hop(2) == 2  # direct to B

    def test_distance(self, fig1):
        table = build_routing_table(fig1, 0)
        assert table.distance(4) == 2.0
        assert table.distance(0) == 0.0

    def test_unreachable_destination(self, line4):
        table = build_routing_table(line4, 0, failures=FailureSet.links((1, 2)))
        assert table.has_route(1)
        assert not table.has_route(3)
        with pytest.raises(NoPathError):
            table.next_hop(3)

    def test_next_hop_to_self_rejected(self, fig1):
        table = build_routing_table(fig1, 0)
        with pytest.raises(NoPathError):
            table.next_hop(0)

    def test_destinations_sorted(self, fig1):
        table = build_routing_table(fig1, 3)
        assert table.destinations() == sorted(table.destinations())

    def test_failure_changes_next_hop(self, fig1):
        before = build_routing_table(fig1, 4)
        after = build_routing_table(fig1, 4, failures=FailureSet.links((1, 4)))
        assert before.next_hop(0) == 1
        assert after.next_hop(0) == 2


class TestAllTables:
    def test_covers_live_nodes(self, fig1):
        tables = build_all_tables(fig1)
        assert set(tables) == set(fig1.nodes())

    def test_failed_node_has_no_table(self, fig1):
        tables = build_all_tables(fig1, failures=FailureSet.nodes(1))
        assert 1 not in tables
        # Other nodes route around the dead node.
        assert tables[4].next_hop(0) == 2

    def test_symmetric_distances(self, waxman50):
        """Undirected links: distance(a→b) == distance(b→a)."""
        tables = build_all_tables(waxman50)
        for a, b in [(0, 10), (5, 31), (12, 49)]:
            assert tables[a].distance(b) == pytest.approx(tables[b].distance(a))
