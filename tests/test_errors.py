"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlreadyMemberError,
    ConfigurationError,
    JoinRejectedError,
    MulticastError,
    NoPathError,
    NotMemberError,
    NotOnTreeError,
    RecoveryError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
    UnrecoverableFailureError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            TopologyError,
            RoutingError,
            MulticastError,
            RecoveryError,
            SimulationError,
            ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_class):
        assert issubclass(exc_class, ReproError)

    def test_no_path_is_routing_error(self):
        assert issubclass(NoPathError, RoutingError)

    def test_membership_errors_are_multicast_errors(self):
        for exc_class in (NotOnTreeError, AlreadyMemberError, NotMemberError,
                          JoinRejectedError):
            assert issubclass(exc_class, MulticastError)

    def test_unrecoverable_is_recovery_error(self):
        assert issubclass(UnrecoverableFailureError, RecoveryError)


class TestPayloads:
    def test_no_path_carries_endpoints(self):
        err = NoPathError(3, 7, reason="partitioned")
        assert err.source == 3 and err.target == 7
        assert "partitioned" in str(err)

    def test_not_on_tree_names_node(self):
        assert "42" in str(NotOnTreeError(42))

    def test_join_rejected_carries_reason(self):
        err = JoinRejectedError(5, "no candidate within bound")
        assert err.node == 5
        assert "bound" in str(err)

    def test_unrecoverable_names_member(self):
        err = UnrecoverableFailureError(9, "source dead")
        assert err.member == 9
        assert "source dead" in str(err)

    def test_catching_family_with_base(self):
        with pytest.raises(ReproError):
            raise NoPathError(0, 1)
