"""The ``repro.api`` facade and the legacy-import deprecation shims."""

import warnings

import pytest

from repro.api import (
    ExperimentSpec,
    ScenarioConfig,
    SerialExecutor,
    build_figure,
    run_scenario,
    run_sweep,
)
from repro.errors import ConfigurationError


class TestRunScenario:
    def test_accepts_keyword_fields(self):
        result = run_scenario(n=24, group_size=5, alpha=0.5)
        assert len(result.members) == 5

    def test_accepts_config_object(self):
        config = ScenarioConfig(n=24, group_size=5, alpha=0.5)
        assert run_scenario(config).config is config

    def test_rejects_mixing_config_and_kwargs(self):
        with pytest.raises(ConfigurationError, match="not both"):
            run_scenario(ScenarioConfig(n=24, group_size=5), n=30)


class TestRunSweep:
    SPEC = ExperimentSpec(
        n=24, group_size=5, alpha=0.5, sweep_values=(0.1, 0.3),
        topologies=1, member_sets=2,
    )

    def test_spec_object(self):
        points = run_sweep(self.SPEC)
        assert [p.label for p in points] == ["0.1", "0.3"]

    def test_spec_as_dict(self):
        assert len(run_sweep(self.SPEC.to_dict())) == 2

    def test_jobs_spawns_transient_pool_with_identical_results(self):
        serial = run_sweep(self.SPEC)
        parallel = run_sweep(self.SPEC, jobs=2)
        assert [
            [r.summary() for r in p.scenarios] for p in serial
        ] == [[r.summary() for r in p.scenarios] for p in parallel]

    def test_explicit_executor_stays_open(self):
        with SerialExecutor() as ex:
            run_sweep(self.SPEC, executor=ex)
            # Second use proves the facade did not close it.
            run_sweep(self.SPEC, executor=ex)

    def test_rejects_executor_and_jobs_together(self):
        with SerialExecutor() as ex:
            with pytest.raises(ConfigurationError, match="not both"):
                run_sweep(self.SPEC, executor=ex, jobs=2)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError, match="jobs must be >= 1"):
            run_sweep(self.SPEC, jobs=0)


class TestBuildFigure:
    def test_numeric_and_string_names(self):
        kwargs = dict(values=[0.1], n=30, group_size=8, topologies=2,
                      member_sets=2)
        by_number = build_figure(8, **kwargs)
        by_name = build_figure("fig8", **kwargs)
        assert by_number.render() == by_name.render()

    def test_quick_shrinks_grid(self):
        result = build_figure(10, quick=True, values=[5], n=24)
        assert len(result.point(5).scenarios) == 4 * 2

    def test_figure7_runs(self):
        result = build_figure(7, topologies=2, n=24, group_size=5, alpha=0.5)
        assert "below y=x" in result.render() or "no comparable" in result.render()

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown figure"):
            build_figure(11)


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "name",
        ["ScenarioConfig", "run_scenario", "run_sweep", "run_figure8",
         "SweepPoint"],
    )
    def test_legacy_import_warns_and_resolves(self, name):
        import repro.experiments as experiments

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            attr = getattr(experiments, name)
        assert attr is not None
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.api" in str(w.message)
            for w in caught
        )

    def test_legacy_objects_are_the_real_ones(self):
        import repro.experiments as experiments

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert experiments.ScenarioConfig is ScenarioConfig

    def test_unknown_attribute_still_raises(self):
        import repro.experiments as experiments

        with pytest.raises(AttributeError):
            experiments.does_not_exist

    def test_dir_lists_legacy_names(self):
        import repro.experiments as experiments

        assert "run_figure10" in dir(experiments)

    def test_submodule_imports_unaffected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.experiments.scenario import ScenarioConfig  # noqa: F401
            from repro.experiments.sweeps import run_sweep  # noqa: F401

    def test_repro_api_lazy_attribute(self):
        import repro

        assert repro.api.ExperimentSpec is ExperimentSpec
