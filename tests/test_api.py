"""The ``repro.api`` facade and the legacy-import deprecation shims."""

import warnings

import pytest

import repro.api as api
from repro.api import (
    ExperimentSpec,
    ScenarioConfig,
    SerialExecutor,
    ServiceSpec,
    Session,
    build_figure,
    open_session,
    run_scenario,
    run_service,
    run_sweep,
)
from repro.errors import ConfigurationError


class TestRunScenario:
    def test_accepts_keyword_fields(self):
        result = run_scenario(n=24, group_size=5, alpha=0.5)
        assert len(result.members) == 5

    def test_accepts_config_object(self):
        config = ScenarioConfig(n=24, group_size=5, alpha=0.5)
        assert run_scenario(config).config is config

    def test_rejects_mixing_config_and_kwargs(self):
        with pytest.raises(ConfigurationError, match="not both"):
            run_scenario(ScenarioConfig(n=24, group_size=5), n=30)


class TestRunSweep:
    SPEC = ExperimentSpec(
        n=24, group_size=5, alpha=0.5, sweep_values=(0.1, 0.3),
        topologies=1, member_sets=2,
    )

    def test_spec_object(self):
        points = run_sweep(self.SPEC)
        assert [p.label for p in points] == ["0.1", "0.3"]

    def test_spec_as_dict(self):
        assert len(run_sweep(self.SPEC.to_dict())) == 2

    def test_jobs_spawns_transient_pool_with_identical_results(self):
        serial = run_sweep(self.SPEC)
        parallel = run_sweep(self.SPEC, jobs=2)
        assert [
            [r.summary() for r in p.scenarios] for p in serial
        ] == [[r.summary() for r in p.scenarios] for p in parallel]

    def test_explicit_executor_stays_open(self):
        with SerialExecutor() as ex:
            run_sweep(self.SPEC, executor=ex)
            # Second use proves the facade did not close it.
            run_sweep(self.SPEC, executor=ex)

    def test_rejects_executor_and_jobs_together(self):
        with SerialExecutor() as ex:
            with pytest.raises(ConfigurationError, match="not both"):
                run_sweep(self.SPEC, executor=ex, jobs=2)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError, match="jobs must be >= 1"):
            run_sweep(self.SPEC, jobs=0)


class TestBuildFigure:
    def test_numeric_and_string_names(self):
        kwargs = dict(values=[0.1], n=30, group_size=8, topologies=2,
                      member_sets=2)
        by_number = build_figure(8, **kwargs)
        by_name = build_figure("fig8", **kwargs)
        assert by_number.render() == by_name.render()

    def test_quick_shrinks_grid(self):
        result = build_figure(10, quick=True, values=[5], n=24)
        assert len(result.point(5).scenarios) == 4 * 2

    def test_figure7_runs(self):
        result = build_figure(7, topologies=2, n=24, group_size=5, alpha=0.5)
        assert "below y=x" in result.render() or "no comparable" in result.render()

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown figure"):
            build_figure(11)


class TestSession:
    SERVICE = ServiceSpec(n=50, groups=6, sources=3, shard_size=3)

    def test_context_manager_owns_its_executor(self):
        with open_session() as session:
            assert session.executor.kind == "serial"
        assert "closed" in repr(session)

    def test_supplied_executor_stays_open(self):
        with SerialExecutor() as ex:
            session = open_session(executor=ex)
            session.close()
            ex.map_scenarios([])  # still usable: the caller owns it

    def test_executor_conflicts_use_shared_rules(self):
        with SerialExecutor() as ex:
            with pytest.raises(ConfigurationError, match="not both"):
                open_session(executor=ex, jobs=2)

    def test_service_verbs_host_live_groups(self, waxman50):
        with open_session(waxman50) as session:
            gid = session.open_group(0, members=[5, 9])
            session.join(gid, 14)
            session.leave(gid, 9)
            assert session.metrics()["groups"] == 1
            from repro.routing.failure_view import FailureSet

            link = min(session.controller.tree(gid).tree_links())
            dispatch = session.restore(FailureSet.links(link))
            assert dispatch.affected == 1

    def test_topology_requires_spec_or_argument(self):
        with open_session() as session:
            with pytest.raises(ConfigurationError, match="no topology"):
                session.topology

    def test_spec_provides_topology_and_protocol(self):
        with open_session(spec=self.SERVICE.to_dict()) as session:
            assert session.spec == self.SERVICE
            assert session.topology.has_node(0)
            assert session.controller.protocol == "smrp"

    def test_run_service_needs_a_spec(self):
        with open_session() as session:
            with pytest.raises(ConfigurationError, match="no service spec"):
                session.run_service()

    def test_run_service_matches_one_shot_verb(self):
        one_shot = run_service(self.SERVICE)
        with open_session(spec=self.SERVICE) as session:
            via_session = session.run_service()
        assert via_session.render_table() == one_shot.render_table()

    def test_scenario_verbs_share_the_session_cache(self):
        with open_session() as session:
            first = session.run_scenario(n=24, group_size=5, alpha=0.5)
            second = session.run_scenario(n=24, group_size=5, alpha=0.5)
            assert first.summary() == second.summary()
            assert session.cache.stats["topologies"]["hits"] >= 1

    def test_public_surface_is_all(self):
        exported = {
            name for name in dir(api)
            if not name.startswith("_") and name in api.__all__
        }
        assert exported == set(api.__all__)
        for name in api.__all__:
            assert getattr(api, name) is not None


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "name",
        ["ScenarioConfig", "run_scenario", "run_sweep", "run_figure8",
         "SweepPoint", "SubstrateCache", "make_executor", "ExecPolicy",
         "CheckpointStore", "ResilientExecutor"],
    )
    def test_legacy_import_warns_and_resolves(self, name):
        import repro.experiments as experiments

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            attr = getattr(experiments, name)
        assert attr is not None
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.api" in str(w.message)
            for w in caught
        )

    def test_legacy_objects_are_the_real_ones(self):
        import repro.experiments as experiments

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert experiments.ScenarioConfig is ScenarioConfig

    def test_unknown_attribute_still_raises(self):
        import repro.experiments as experiments

        with pytest.raises(AttributeError):
            experiments.does_not_exist

    def test_dir_lists_legacy_names(self):
        import repro.experiments as experiments

        assert "run_figure10" in dir(experiments)

    def test_submodule_imports_unaffected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.experiments.scenario import ScenarioConfig  # noqa: F401
            from repro.experiments.sweeps import run_sweep  # noqa: F401

    def test_repro_api_lazy_attribute(self):
        import repro

        assert repro.api.ExperimentSpec is ExperimentSpec
