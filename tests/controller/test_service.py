"""Service-run determinism: serial, sharded, resilient, and resumed
executions of one ServiceSpec must render byte-identical reports."""

import pytest

from repro.controller.service import (
    ServiceReport,
    ServiceShard,
    ShardResult,
    plan_shards,
    run_service,
)
from repro.controller.spec import ServiceSpec
from repro.errors import CheckpointError, ConfigurationError
from repro.experiments.exec import ExecPolicy
from repro.obs import Observability
from repro.obs.live import TelemetryHub

#: Small mixed-workload spec: big enough that the auto failure cuts
#: several groups, small enough to run in every executor kind.
SPEC = ServiceSpec(
    n=60, groups=24, sources=6, shard_size=7, workload="flash",
    protocol="spf", topology_seed=1,
)

#: One SMRP case exercising local detours + reshaping end to end.
SMRP_SPEC = ServiceSpec(n=50, groups=10, sources=4, shard_size=4)


class ListSink:
    """Telemetry sink stand-in collecting every record."""

    def __init__(self):
        self.records = []

    def handle(self, record):
        self.records.append(record)

    def tick(self, snapshot):
        pass

    def close(self):
        pass


@pytest.fixture(scope="module")
def serial_report():
    return run_service(SPEC)


class TestPlanShards:
    def test_partition_covers_the_range_once(self):
        shards = plan_shards(SPEC)
        assert [s.start for s in shards] == [0, 7, 14, 21]
        assert [s.stop for s in shards] == [7, 14, 21, 24]
        assert all(s.spec == SPEC for s in shards)

    def test_partition_ignores_everything_but_shard_size(self):
        assert len(plan_shards(ServiceSpec(groups=10, shard_size=50))) == 1
        assert len(plan_shards(ServiceSpec(groups=10, shard_size=1))) == 10

    def test_bad_shard_range_rejected(self):
        with pytest.raises(CheckpointError, match="outside the spec"):
            ServiceShard(SPEC, 20, 30)
        with pytest.raises(CheckpointError):
            ServiceShard(SPEC, 5, 5)

    def test_content_keys_distinct_and_stable(self):
        shards = plan_shards(SPEC)
        keys = [s.content_key() for s in shards]
        assert len(set(keys)) == len(keys)
        assert keys == [s.content_key() for s in plan_shards(SPEC)]
        assert "service shard groups [0, 7)" in shards[0].describe()


class TestShardResult:
    def test_checkpoint_round_trip(self):
        result = plan_shards(SMRP_SPEC)[0].run()
        clone = ShardResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()
        assert clone.checkpoint_type == "service_shard"

    def test_foreign_payload_version_rejected(self):
        result = plan_shards(SMRP_SPEC)[0].run()
        payload = result.to_dict()
        payload["payload_version"] = 99
        with pytest.raises(CheckpointError, match="payload version"):
            ShardResult.from_dict(payload)


class TestServiceRun:
    def test_report_shape(self, serial_report):
        report = serial_report
        assert isinstance(report, ServiceReport)
        assert report.groups == SPEC.groups
        assert report.shards == 4
        assert report.members > 0 and report.events > 0
        assert report.affected >= 1
        assert report.restored >= 1
        # canonical row order: shards ascending, sorted gids within each
        gids = [(row.source, row.group) for row in report.rows]
        by_shard: dict[int, list] = {}
        for source, group in gids:
            by_shard.setdefault(group // SPEC.shard_size, []).append(
                (source, group)
            )
        expected = [
            gid for shard in sorted(by_shard)
            for gid in sorted(by_shard[shard])
        ]
        assert gids == expected
        assert len(set(gids)) == len(gids)

    def test_render_table_mentions_the_run(self, serial_report):
        text = serial_report.render_table()
        assert f"service {SPEC.content_key()}" in text
        assert "24 spf groups" in text
        assert "worst restoration latency" in text

    def test_sharded_run_is_byte_identical(self, serial_report):
        sharded = run_service(SPEC, jobs=2)
        assert sharded.render_table() == serial_report.render_table()

    def test_resilient_run_is_byte_identical(self, serial_report):
        report = run_service(SPEC, jobs=2, policy=ExecPolicy(backoff_base=0.0))
        assert report.render_table() == serial_report.render_table()

    def test_checkpoint_resume_is_byte_identical(self, serial_report, tmp_path):
        store = str(tmp_path / "ckpt")
        cold_obs, warm_obs = Observability(), Observability()
        cold = run_service(
            SPEC, jobs=2,
            policy=ExecPolicy(backoff_base=0.0, checkpoint_dir=store),
            obs=cold_obs,
        )
        warm = run_service(
            SPEC, jobs=2,
            policy=ExecPolicy(
                backoff_base=0.0, checkpoint_dir=store, resume=True
            ),
            obs=warm_obs,
        )
        assert cold.render_table() == serial_report.render_table()
        assert warm.render_table() == serial_report.render_table()
        counters = warm_obs.metrics.snapshot()["counters"]
        assert counters.get("exec.checkpoint.hits", 0) == 4

    def test_smrp_service_restores_with_local_detours(self):
        report = run_service(SMRP_SPEC)
        assert report.affected >= 1
        assert any(row.strategy == "local" for row in report.rows)
        assert all(row.protocol == "smrp" for row in report.rows)

    def test_no_failure_mode_yields_empty_rows(self):
        spec = ServiceSpec(n=40, groups=4, sources=2, shard_size=2,
                           failure="none")
        report = run_service(spec)
        assert report.rows == ()
        assert "no groups affected" in report.render_table()

    def test_telemetry_stream_matches_rows(self, serial_report):
        sink = ListSink()
        hub = TelemetryHub(sinks=[sink])
        report = run_service(SPEC, telemetry=hub)
        restores = [
            r for r in sink.records if r.get("kind") == "group.restore"
        ]
        assert [r["group"] for r in restores] == [
            f"{row.source}:{row.group}" for row in report.rows
        ]
        assert report.render_table() == serial_report.render_table()
        counters = hub.metrics.snapshot()["counters"]
        assert counters["telemetry.groups.restored"] == report.affected
        assert counters["telemetry.groups.members_restored"] == report.restored

    def test_executor_conflicts_rejected(self):
        from repro.experiments.exec import SerialExecutor

        with SerialExecutor() as ex:
            with pytest.raises(ConfigurationError, match="not both"):
                run_service(SPEC, executor=ex, jobs=2)


class TestAcceptanceScale:
    """The PR's headline criterion: a single link failure hitting ≥50
    of 1000 hosted groups is restored in one controller pass."""

    def test_thousand_groups_one_pass(self):
        spec = ServiceSpec(
            n=100, groups=1000, sources=8, shard_size=250,
            protocol="spf", failure="auto",
        )
        sink = ListSink()
        hub = TelemetryHub(sinks=[sink])
        report = run_service(spec, telemetry=hub)
        assert report.groups == 1000
        assert report.affected >= 50
        assert report.restored > 0
        assert report.unrecoverable == 0
        restores = [
            r for r in sink.records if r.get("kind") == "group.restore"
        ]
        assert len(restores) == report.affected
