"""Tests for the multi-group MulticastController registry + dispatch."""

import pytest

from repro.controller.controller import MulticastController
from repro.errors import ConfigurationError
from repro.multicast.group import GroupEvent, GroupAction, GroupWorkload
from repro.obs import Observability
from repro.routing.failure_view import FailureSet


class RecordingHub:
    """Telemetry stand-in: keeps published records in order."""

    def __init__(self):
        self.records = []

    def publish(self, kind, **fields):
        record = {"kind": kind, **fields}
        self.records.append(record)
        return record


@pytest.fixture
def controller(waxman50):
    return MulticastController(waxman50)


def open_spread(controller, count=6):
    """Host ``count`` small groups on distinct sources."""
    gids = []
    for i in range(count):
        gid = controller.open_group(i, members=[(i + 7) % 50, (i + 19) % 50])
        gids.append(gid)
    return gids


class TestRegistry:
    def test_group_numbers_auto_increment(self, controller):
        assert controller.open_group(0) == (0, 0)
        assert controller.open_group(1) == (1, 1)
        assert controller.open_group(2, 10) == (2, 10)
        assert controller.open_group(3) == (3, 11)
        assert len(controller) == 4
        assert controller.group_ids() == [(0, 0), (1, 1), (2, 10), (3, 11)]

    def test_duplicate_group_rejected(self, controller):
        controller.open_group(0, 5)
        with pytest.raises(ConfigurationError, match="already hosted"):
            controller.open_group(0, 5)

    def test_unknown_source_rejected(self, controller):
        with pytest.raises(ConfigurationError, match="not in the topology"):
            controller.open_group(999)

    def test_unknown_protocol_rejected(self, waxman50):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            MulticastController(waxman50, protocol="pim")
        controller = MulticastController(waxman50)
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            controller.open_group(0, protocol="pim")

    def test_per_group_protocol_override(self, controller):
        smrp = controller.open_group(0, members=[5])
        spf = controller.open_group(1, protocol="spf", members=[6])
        assert controller._groups[smrp].protocol == "smrp"
        assert controller._groups[spf].protocol == "spf"

    def test_join_leave_and_close(self, controller):
        gid = controller.open_group(0, members=[5, 9])
        controller.join(gid, 14)
        assert controller.tree(gid).members == frozenset({5, 9, 14})
        controller.leave(gid, 9)
        assert controller.tree(gid).members == frozenset({5, 14})
        controller.close_group(gid)
        with pytest.raises(ConfigurationError, match="no hosted group"):
            controller.tree(gid)

    def test_apply_workload_is_defensive(self, controller):
        gid = controller.open_group(0, members=[5])
        workload = GroupWorkload([
            GroupEvent(0.0, 5, GroupAction.JOIN),   # already a member
            GroupEvent(0.5, 0, GroupAction.JOIN),   # the source
            GroupEvent(1.0, 8, GroupAction.JOIN),
            GroupEvent(2.0, 9, GroupAction.LEAVE),  # never joined
            GroupEvent(3.0, 8, GroupAction.LEAVE),
        ])
        assert controller.apply_workload(gid, workload) == 2
        assert controller.tree(gid).members == frozenset({5})


class TestFailureDispatch:
    def on_tree_failure(self, controller, gid):
        link = min(controller.tree(gid).tree_links())
        return FailureSet.links(link)

    def test_fail_returns_only_affected_groups(self, controller):
        gids = open_spread(controller)
        target = gids[0]
        failures = self.on_tree_failure(controller, target)
        affected = controller.fail(failures)
        assert target in affected
        assert affected == sorted(affected)
        for gid in affected:
            assert controller.tree(gid).affected_by(failures)
        for gid in set(gids) - set(affected):
            assert not controller.tree(gid).affected_by(failures)

    def test_empty_failure_is_a_noop_dispatch(self, controller):
        open_spread(controller)
        assert controller.fail(FailureSet()) == []
        dispatch = controller.restore()
        assert dispatch.rows == ()
        assert dispatch.affected == 0

    def test_restore_without_fail_raises(self, controller):
        open_spread(controller)
        with pytest.raises(ConfigurationError, match="nothing to restore"):
            controller.restore()

    def test_restore_consumes_the_pending_failure(self, controller):
        gids = open_spread(controller)
        controller.fail(self.on_tree_failure(controller, gids[0]))
        controller.restore()
        with pytest.raises(ConfigurationError, match="nothing to restore"):
            controller.restore()

    def test_one_pass_restores_every_affected_group(self, controller):
        gids = open_spread(controller)
        failures = self.on_tree_failure(controller, gids[0])
        affected = controller.fail(failures)
        dispatch = controller.restore()
        assert [((r.source, r.group)) for r in dispatch.rows] == affected
        for row in dispatch.rows:
            # some cut members ride home on another member's detour
            # (already_connected) — they count as affected, not restored
            assert row.affected >= row.restored + row.unrecoverable
            tree = controller.tree((row.source, row.group))
            # repaired trees no longer traverse the failed link
            assert not tree.affected_by(failures)
        assert failures.describe() in dispatch.describe()

    def test_restore_accepts_inline_failures(self, controller):
        gids = open_spread(controller)
        failures = self.on_tree_failure(controller, gids[0])
        dispatch = controller.restore(failures)
        assert dispatch.affected >= 1

    def test_closed_groups_leave_the_index(self, controller):
        gids = open_spread(controller)
        failures = self.on_tree_failure(controller, gids[0])
        assert gids[0] in controller.fail(failures)
        controller.restore()
        controller.close_group(gids[0])
        assert gids[0] not in controller.fail(failures)

    def test_node_failure_dispatch(self, controller):
        gid = controller.open_group(0, members=[5, 9, 14])
        relay = next(
            node
            for node in controller.tree(gid).on_tree_nodes()
            if node != 0
        )
        affected = controller.fail(FailureSet.nodes(relay))
        assert gid in affected

    def test_telemetry_record_per_restored_group(self, waxman50):
        hub = RecordingHub()
        controller = MulticastController(waxman50, telemetry=hub)
        gids = open_spread(controller)
        dispatch = controller.restore(
            self.on_tree_failure(controller, gids[0])
        )
        restores = [r for r in hub.records if r["kind"] == "group.restore"]
        assert len(restores) == dispatch.affected
        assert restores[0]["group"] == (
            f"{dispatch.rows[0].source}:{dispatch.rows[0].group}"
        )

    def test_counters_and_metrics_snapshot(self, waxman50):
        obs = Observability()
        controller = MulticastController(waxman50, obs=obs)
        gids = open_spread(controller, count=4)
        failures = self.on_tree_failure(controller, gids[0])
        dispatch = controller.restore(failures)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["controller.groups_opened"] == 4
        assert counters["controller.failures_dispatched"] == 1
        assert counters["controller.groups_affected"] == dispatch.affected
        assert counters["controller.members_restored"] == dispatch.restored
        metrics = controller.metrics()
        assert metrics["groups"] == 4
        assert metrics["restorations"] == dispatch.affected
        assert metrics["members"] == sum(
            len(controller.tree(gid).members) for gid in gids
        )


class TestBatchedRestoration:
    """fail()-time cache warming: one multi-root kernel per bucket, with
    restoration results identical to the per-group scalar path."""

    def make(self, waxman50, batch, obs=None):
        from repro.experiments.exec.cache import SubstrateCache

        return MulticastController(
            waxman50,
            cache=SubstrateCache(),
            obs=obs if obs is not None else Observability(),
            batch_restoration=batch,
        )

    def scenario(self, controller):
        gids = open_spread(controller, count=8)
        link = min(controller.tree(gids[0]).tree_links())
        failures = FailureSet.links(link)
        affected = controller.fail(failures)
        dispatch = controller.restore()
        return affected, dispatch

    def test_batched_identical_to_per_group(self, waxman50):
        batched = self.make(waxman50, batch=True)
        plain = self.make(waxman50, batch=False)
        a1, d1 = self.scenario(batched)
        a0, d0 = self.scenario(plain)
        assert a1 == a0
        assert [r.to_dict() for r in d1.rows] == [r.to_dict() for r in d0.rows]
        for gid in a1:
            assert batched.tree(gid).tree_links() == plain.tree(gid).tree_links()

    def test_batch_counters_and_warmed_hits(self, waxman50):
        obs = Observability()
        controller = self.make(waxman50, batch=True, obs=obs)
        affected, _ = self.scenario(controller)
        counters = obs.metrics.snapshot()["counters"]
        if affected:
            assert counters.get("controller.batch.buckets", 0) >= 1
            assert counters.get("controller.batch.bucket_size", 0) >= 1
            # Every warmed entry came through the batch-insert path.
            assert counters.get("cache.routes.batch_inserts", 0) == counters.get(
                "controller.batch.warmed", 0
            )

    def test_disabled_emits_no_batch_counters(self, waxman50):
        obs = Observability()
        controller = self.make(waxman50, batch=False, obs=obs)
        self.scenario(controller)
        counters = obs.metrics.snapshot()["counters"]
        assert "controller.batch.buckets" not in counters
        assert "cache.routes.batch_inserts" not in counters

    def test_no_cache_is_a_noop(self, waxman50):
        controller = MulticastController(waxman50, batch_restoration=True)
        affected, dispatch = self.scenario(controller)
        assert dispatch.affected == len(affected)

    def test_env_var_default(self, waxman50, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_RESTORE", raising=False)
        assert MulticastController(waxman50).batch_restoration is True
        monkeypatch.setenv("REPRO_BATCH_RESTORE", "0")
        assert MulticastController(waxman50).batch_restoration is False
        monkeypatch.setenv("REPRO_BATCH_RESTORE", "off")
        assert MulticastController(waxman50).batch_restoration is False
        monkeypatch.setenv("REPRO_BATCH_RESTORE", "1")
        assert MulticastController(waxman50).batch_restoration is True
        # Explicit argument always wins over the environment.
        monkeypatch.setenv("REPRO_BATCH_RESTORE", "0")
        assert (
            MulticastController(waxman50, batch_restoration=True).batch_restoration
            is True
        )


class TestProtectionEngines:
    """The protection family slots in wherever smrp/spf do."""

    def test_protection_modes_hostable(self, waxman50):
        controller = MulticastController(waxman50)
        for protocol in ("protection", "hybrid", "alternate"):
            gid = controller.open_group(
                0, protocol=protocol, members=[9, 17, 28]
            )
            assert controller._groups[gid].protocol == protocol
            assert controller._groups[gid].engine.name == protocol

    def test_negative_protect_budget_rejected(self, waxman50):
        with pytest.raises(ConfigurationError, match="protect_budget"):
            MulticastController(waxman50, protect_budget=-1)

    def test_protected_failure_restores_by_switchover(self, waxman50):
        controller = MulticastController(
            waxman50, protocol="protection", protect_budget=4
        )
        gid = controller.open_group(0, members=[9, 17, 28, 35, 42])
        engine = controller._groups[gid].engine
        engine.backups.ensure(engine.tree)  # open_group joins lazily
        link = engine.backups.links()[0]
        controller.fail(FailureSet.links(link))
        dispatch = controller.restore()
        assert dispatch.rows
        row = dispatch.rows[0]
        assert row.strategy == "backup"
        assert row.recovery_distance == 0.0

    def test_hybrid_falls_back_to_local(self, waxman50):
        controller = MulticastController(
            waxman50, protocol="hybrid", protect_budget=0
        )
        gid = controller.open_group(0, members=[9, 17, 28, 35])
        engine = controller._groups[gid].engine
        link = sorted(engine.tree.tree_links())[0]
        controller.fail(FailureSet.links(link))
        dispatch = controller.restore()
        if dispatch.rows:
            assert dispatch.rows[0].strategy == "local"

    def test_alternate_strategy_provenance(self, waxman50):
        controller = MulticastController(waxman50, protocol="alternate")
        gid = controller.open_group(0, members=[9, 17, 28, 35])
        engine = controller._groups[gid].engine
        link = sorted(engine.tree.tree_links())[0]
        controller.fail(FailureSet.links(link))
        dispatch = controller.restore()
        if dispatch.rows:
            assert dispatch.rows[0].strategy == "alternate"
