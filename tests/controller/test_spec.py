"""Tests for ServiceSpec: validation, identity, failure resolution."""

import json

import pytest

from repro.controller.spec import ServiceSpec, resolve_failure
from repro.controller.workload import source_pool
from repro.errors import ConfigurationError
from repro.experiments.exec.cache import SubstrateCache


class TestValidation:
    def test_defaults_valid(self):
        spec = ServiceSpec()
        assert spec.groups == 200
        assert spec.protocol == "smrp"

    @pytest.mark.parametrize("kwargs", [
        {"groups": 0},
        {"sources": 0},
        {"sources": 100},
        {"source_skew": 0.0},
        {"group_size_min": 0},
        {"group_size_min": 13, "group_size_max": 12},
        {"group_size_max": 100},
        {"size_skew": 1.0},
        {"protocol": "pim"},
        {"d_thresh": -0.1},
        {"workload": "bursty"},
        {"churn_duration": 0.0},
        {"flash_fraction": 0.0},
        {"flash_fraction": 1.5},
        {"shard_size": 0},
        {"failure": "link:3"},
        {"failure": "link:a-b"},
        {"failure": "node:x"},
        {"failure": "meteor"},
        {"n": 2},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceSpec(**kwargs)

    def test_failure_syntaxes_accepted(self):
        for mode in ("none", "auto", "link:3-7", "node:12"):
            assert ServiceSpec(failure=mode).failure == mode


class TestIdentity:
    def test_round_trip(self):
        spec = ServiceSpec(groups=40, workload="flash", failure="link:1-2",
                           protocol="spf")
        assert ServiceSpec.from_dict(spec.to_dict()) == spec
        assert ServiceSpec.from_json(spec.to_json()) == spec

    def test_unknown_fields_rejected(self):
        payload = ServiceSpec().to_dict()
        payload["turbo"] = True
        with pytest.raises(ConfigurationError, match="unknown ServiceSpec"):
            ServiceSpec.from_dict(payload)

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid ServiceSpec"):
            ServiceSpec.from_json("{nope")
        with pytest.raises(ConfigurationError, match="must be an object"):
            ServiceSpec.from_json(json.dumps([1, 2]))

    def test_content_key_stable_and_sensitive(self):
        a = ServiceSpec()
        assert a.content_key() == ServiceSpec().content_key()
        assert len(a.content_key()) == 16
        assert a.content_key() != ServiceSpec(groups=201).content_key()
        assert a.content_key() == a.key()

    def test_describe_mentions_shape(self):
        text = ServiceSpec(groups=7, protocol="spf").describe()
        assert "7 spf groups" in text


class TestResolveFailure:
    @pytest.fixture
    def topology(self):
        return SubstrateCache().topology_for(ServiceSpec())

    def test_none(self, topology):
        assert resolve_failure(ServiceSpec(failure="none"), topology).is_empty

    def test_explicit_link(self, topology):
        u, v = next(iter(topology.links())).key
        failures = resolve_failure(
            ServiceSpec(failure=f"link:{u}-{v}"), topology
        )
        assert (u, v) in failures.failed_links

    def test_missing_link_rejected(self, topology):
        with pytest.raises(ConfigurationError, match="no link"):
            resolve_failure(ServiceSpec(failure="link:0-0"), topology)

    def test_explicit_node(self, topology):
        node = topology.nodes()[3]
        failures = resolve_failure(
            ServiceSpec(failure=f"node:{node}"), topology
        )
        assert node in failures.failed_nodes

    def test_missing_node_rejected(self, topology):
        with pytest.raises(ConfigurationError, match="no node"):
            resolve_failure(ServiceSpec(failure="node:100000"), topology)

    def test_auto_is_hot_source_incident(self, topology):
        spec = ServiceSpec(failure="auto")
        failures = resolve_failure(spec, topology)
        (u, v), = failures.failed_links
        hot = source_pool(spec, topology)[0]
        assert hot in (u, v)
        assert topology.has_link(u, v)

    def test_auto_deterministic(self, topology):
        spec = ServiceSpec(failure="auto")
        a = resolve_failure(spec, topology)
        b = resolve_failure(spec, topology)
        assert a.failed_links == b.failed_links


class TestProtectionFields:
    def test_protection_protocols_accepted(self):
        for protocol in ("protection", "hybrid", "alternate"):
            spec = ServiceSpec(protocol=protocol)
            assert spec.protocol == protocol

    def test_protect_budget_round_trips(self):
        spec = ServiceSpec(protocol="hybrid", protect_budget=7)
        assert ServiceSpec.from_dict(spec.to_dict()) == spec
        assert ServiceSpec.from_json(spec.to_json()).protect_budget == 7

    def test_negative_protect_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceSpec(protect_budget=-1)

    def test_protect_budget_changes_the_content_key(self):
        assert (
            ServiceSpec(protect_budget=4).content_key()
            != ServiceSpec(protect_budget=5).content_key()
        )
