"""Tests for the SMRPProtocol engine (joins, leaves, config, recovery)."""

import pytest

from repro.errors import (
    AlreadyMemberError,
    ConfigurationError,
    NotMemberError,
)
from repro.graph.generators import node_id
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.multicast.validation import check_tree_invariants
from repro.routing.spf import dijkstra


class TestConfig:
    def test_defaults(self):
        cfg = SMRPConfig()
        assert cfg.d_thresh == 0.3
        assert cfg.reshape_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"d_thresh": -0.1},
            {"reshape_scope": "everyone"},
            {"knowledge": "oracle"},
            {"max_reshape_rounds": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SMRPConfig(**kwargs)


class TestMembership:
    def test_double_join_rejected(self, fig4):
        proto = SMRPProtocol(fig4, node_id("S"))
        proto.join(node_id("E"))
        with pytest.raises(AlreadyMemberError):
            proto.join(node_id("E"))

    def test_leave_unknown_member_rejected(self, fig4):
        proto = SMRPProtocol(fig4, node_id("S"))
        with pytest.raises(NotMemberError):
            proto.leave(node_id("E"))

    def test_join_on_tree_relay_returns_none(self, fig4):
        proto = SMRPProtocol(fig4, node_id("S"))
        proto.join(node_id("E"))  # path S-A-D-E
        assert proto.join(node_id("D")) is None
        assert proto.tree.is_member(node_id("D"))

    def test_join_leave_roundtrip(self, waxman50):
        proto = SMRPProtocol(waxman50, 0)
        members = [5, 17, 29, 33]
        proto.build(members)
        for m in members:
            proto.leave(m)
        assert proto.tree.on_tree_nodes() == [0]

    def test_build_full_group(self, waxman50):
        proto = SMRPProtocol(waxman50, 0)
        members = [m for m in range(1, 20)]
        tree = proto.build(members)
        check_tree_invariants(tree)
        assert tree.members == frozenset(members)


class TestDelayBound:
    @pytest.mark.parametrize("d_thresh", [0.0, 0.2, 0.5])
    def test_join_respects_bound(self, waxman50, d_thresh):
        proto = SMRPProtocol(
            waxman50,
            0,
            config=SMRPConfig(d_thresh=d_thresh, reshape_enabled=False),
        )
        members = [3, 9, 14, 22, 37, 41]
        proto.build(members)
        if proto.stats.fallback_joins:
            pytest.skip("fallback joins exempt from the bound")
        spf = dijkstra(waxman50, 0)
        for m in members:
            bound = (1 + d_thresh) * spf.dist[m]
            assert proto.tree.delay_from_source(m) <= bound + 1e-9

    def test_larger_dthresh_admits_lower_sharing(self, waxman50):
        members = list(range(1, 16))

        def max_shr(d_thresh: float) -> int:
            proto = SMRPProtocol(
                waxman50, 0, config=SMRPConfig(d_thresh=d_thresh)
            )
            proto.build(members)
            return max(proto.shr_values().values())

        # A looser bound can only (weakly) reduce the worst sharing.
        assert max_shr(0.5) <= max_shr(0.0)


class TestKnowledgeModes:
    def test_query_mode_builds_valid_tree(self, waxman50):
        proto = SMRPProtocol(
            waxman50, 0, config=SMRPConfig(knowledge="query")
        )
        members = [4, 11, 26, 39]
        tree = proto.build(members)
        check_tree_invariants(tree)
        assert proto.stats.query_messages > 0
        assert proto.stats.query_hops > 0

    def test_full_mode_sends_no_queries(self, waxman50):
        proto = SMRPProtocol(waxman50, 0)
        proto.build([4, 11])
        assert proto.stats.query_messages == 0


class TestStats:
    def test_counters_track_activity(self, fig4):
        proto = SMRPProtocol(fig4, node_id("S"))
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        proto.leave(node_id("G"))
        s = proto.stats
        assert s.joins == 3
        assert s.leaves == 1
        assert s.join_signaling_hops > 0
        assert s.leave_signaling_hops > 0


class TestRecoveryIntegration:
    def test_recover_uses_local_detour(self, fig4):
        proto = SMRPProtocol(fig4, node_id("S"))
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        from repro.core.recovery import worst_case_failure

        failure = worst_case_failure(proto.tree, node_id("E"))
        result = proto.recover(node_id("E"), failure)
        assert result.strategy == "local"
        assert not failure.path_affected(result.restoration_path)


class TestPeriodicReshape:
    def test_periodic_reshape_finds_departure_opportunities(self, fig4):
        """Condition II: after departures, a member can move to a now
        lightly shared attachment."""
        proto = SMRPProtocol(
            fig4,
            node_id("S"),
            config=SMRPConfig(d_thresh=0.3, reshape_enabled=False),
        )
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        # E sits under the crowded D; a periodic pass moves it (same
        # decision Condition I would have made).
        performed = proto.periodic_reshape()
        assert any(d.node == node_id("E") for d in performed)
        check_tree_invariants(proto.tree)

    def test_periodic_reshape_is_idempotent(self, fig4):
        proto = SMRPProtocol(fig4, node_id("S"))
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        first = proto.periodic_reshape()
        second = proto.periodic_reshape()
        assert second == []  # already settled
