"""Tests for the §3.3.1 query scheme."""

import pytest

from repro.graph.generators import node_id
from repro.multicast.tree import MulticastTree
from repro.core.candidates import enumerate_candidates
from repro.core.query import enumerate_candidates_query
from repro.core.shr import shr_table
from repro.routing.failure_view import FailureSet


@pytest.fixture
def fig4_tree(fig4):
    tree = MulticastTree(fig4, node_id("S"))
    tree.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
    return tree


class TestQueryScheme:
    def test_discovers_via_neighbors(self, fig4, fig4_tree):
        candidates, stats = enumerate_candidates_query(
            fig4, fig4_tree, node_id("G"), shr_table(fig4_tree)
        )
        # G's neighbors are B and F; B's SPF path to S hits S directly,
        # F's hits D first.
        assert {c.merge_node for c in candidates} == {node_id("S"), node_id("D")}
        assert stats.queries_sent == 2
        assert stats.responses == 2
        assert stats.query_hops > 0

    def test_on_tree_neighbor_answers_directly(self, fig4, fig4_tree):
        candidates, stats = enumerate_candidates_query(
            fig4, fig4_tree, node_id("F"), shr_table(fig4_tree)
        )
        by_merge = {c.merge_node: c for c in candidates}
        assert node_id("D") in by_merge
        assert by_merge[node_id("D")].graft_path == (node_id("D"), node_id("F"))

    def test_subset_of_full_knowledge(self, waxman50):
        """Every query-scheme candidate merge point is also discoverable
        with full knowledge (the query scheme can only lose options)."""
        from repro.multicast.spf_protocol import SPFMulticastProtocol

        proto = SPFMulticastProtocol(waxman50, 0)
        proto.build([10, 20, 30, 40])
        tree = proto.tree
        shr = shr_table(tree)
        full = {c.merge_node for c in enumerate_candidates(waxman50, tree, 15, shr)}
        query, _ = enumerate_candidates_query(waxman50, tree, 15, shr)
        assert query, "query scheme found nothing"
        # Query-scheme relay paths may differ, but the merge points it can
        # possibly return are on-tree nodes; at least its best candidate
        # must be usable for a join.
        for c in query:
            assert tree.is_on_tree(c.merge_node)
        assert len(query) <= len(full) + len(full)  # sanity: bounded

    def test_failures_respected(self, fig4, fig4_tree):
        failures = FailureSet.links((node_id("G"), node_id("B")))
        candidates, stats = enumerate_candidates_query(
            fig4, fig4_tree, node_id("G"), shr_table(fig4_tree), failures=failures
        )
        assert {c.merge_node for c in candidates} == {node_id("D")}
        assert stats.queries_sent == 1  # only the F side is queried

    def test_duplicate_merge_keeps_best(self, fig1):
        """Two neighbors may reach the same first on-tree node; the
        lower-delay relay path is kept."""
        tree = MulticastTree(fig1, node_id("S"))
        tree.graft([node_id("S"), node_id("A")], member=False)
        tree.add_member(node_id("A"))
        candidates, _ = enumerate_candidates_query(
            fig1, tree, node_id("D"), shr_table(tree)
        )
        merges = [c.merge_node for c in candidates]
        assert len(merges) == len(set(merges))

    def test_isolated_joiner_finds_nothing(self, fig4, fig4_tree):
        failures = FailureSet.nodes(node_id("B"), node_id("F"))
        candidates, stats = enumerate_candidates_query(
            fig4, fig4_tree, node_id("G"), shr_table(fig4_tree), failures=failures
        )
        assert candidates == []
