"""Tests for agent (gateway) failover in the N-level hierarchy."""

import pytest

from repro.graph.nlevel import LevelSpec, n_level_topology
from repro.core.nlevel import NLevelMulticast
from repro.core.protocol import SMRPConfig
from repro.multicast.validation import check_tree_invariants
from repro.routing.failure_view import FailureSet


@pytest.fixture
def world():
    # Dense leaf domains (alpha=beta=1) so that losing the agent does not
    # also disconnect the domain internally.
    network = n_level_topology(
        [
            LevelSpec(size=4, fanout=2, alpha=0.9, scale=120.0,
                      standby_gateways=1),
            LevelSpec(size=8, fanout=0, alpha=1.0, beta=1.0, scale=40.0,
                      standby_gateways=1),
        ],
        seed=9,
    )
    leaves = network.leaf_domains()
    source = min(
        n for n in leaves[0].nodes
        if n not in (leaves[0].gateway, *leaves[0].standbys)
    )
    session = NLevelMulticast(network, source, config=SMRPConfig(d_thresh=0.8))
    return network, session


def remote_member(network, leaf_index):
    leaf = network.leaf_domains()[leaf_index]
    return max(
        n for n in leaf.nodes if n not in (leaf.gateway, *leaf.standbys)
    )


class TestGeneratorStandbys:
    def test_standbys_exist_and_are_uplinked(self, world):
        network, _ = world
        for domain in network.domains[1:]:
            assert len(domain.standbys) == 1
            standby = domain.standbys[0]
            assert standby in domain.nodes
            assert standby != domain.gateway
            assert network.topology.has_link(standby, domain.attachments[0])


class TestFailover:
    def test_remote_leaf_agent_failure_promotes_standby(self, world):
        network, session = world
        member = remote_member(network, 1)
        session.join(member)
        leaf = network.domains[network.domain_of[member]]
        old_gateway = leaf.gateway
        standby = leaf.standbys[0]
        assert member not in (old_gateway, standby)

        report = session.recover(FailureSet.nodes(old_gateway))
        assert report.failovers.get(leaf.domain_id) == standby
        assert leaf.domain_id not in report.dead_domains
        # Service continues through the standby agent.
        assert network.domains[network.domain_of[member]].gateway == standby
        assert session.end_to_end_delay(member) > 0
        for domain_id in session.active_domains():
            check_tree_invariants(session.protocol(domain_id).tree)

    def test_source_domain_agent_failure(self, world):
        """The source leaf's agent relays upward; its standby inherits."""
        network, session = world
        member = remote_member(network, 1)
        session.join(member)
        source_leaf = network.domains[session.source_domain_id]
        old_gateway = source_leaf.gateway
        if session.source == old_gateway:
            pytest.skip("source coincides with agent in this layout")
        report = session.recover(FailureSet.nodes(old_gateway))
        assert source_leaf.domain_id in report.failovers
        assert session.end_to_end_delay(member) > 0

    def test_no_standby_means_dead_domain(self):
        network = n_level_topology(
            [
                LevelSpec(size=4, fanout=2, alpha=0.9, standby_gateways=0),
                LevelSpec(size=5, fanout=0, alpha=0.8, standby_gateways=0),
            ],
            seed=4,
        )
        leaves = network.leaf_domains()
        source = min(n for n in leaves[0].nodes if n != leaves[0].gateway)
        session = NLevelMulticast(network, source)
        member = max(n for n in leaves[1].nodes if n != leaves[1].gateway)
        session.join(member)
        dead_gateway = leaves[1].gateway
        report = session.recover(FailureSet.nodes(dead_gateway))
        assert leaves[1].domain_id in report.dead_domains
        assert member not in session.members

    def test_unused_agent_failure_is_ignored(self, world):
        network, session = world
        # No members outside the source leaf: the other leaf's agent is idle.
        idle_leaf = network.leaf_domains()[1]
        report = session.recover(FailureSet.nodes(idle_leaf.gateway))
        assert not report.failovers
        assert not report.dead_domains
