"""The paper's Figure 4 walkthrough, decision by decision.

These tests pin the exact narrative of §3.2.2: members E, G, F join in
order with ``D_thresh = 0.3`` and the protocol makes the choices the
paper describes.
"""

import pytest

from repro.graph.generators import node_id
from repro.core.protocol import SMRPConfig, SMRPProtocol


@pytest.fixture
def proto(fig4):
    return SMRPProtocol(
        fig4, node_id("S"), config=SMRPConfig(d_thresh=0.3, reshape_enabled=False)
    )


class TestFigure4:
    def test_e_joins_over_spf_path(self, proto):
        """E's join is trivial: the empty tree makes SPF the only option."""
        selection = proto.join(node_id("E"))
        assert selection.candidate.graft_path == (
            node_id("S"),
            node_id("A"),
            node_id("D"),
            node_id("E"),
        )
        assert not selection.fallback
        assert proto.shr_values()[node_id("D")] == 2

    def test_g_prefers_min_shr_despite_longer_delay(self, proto):
        """G picks G→B→S (merge at S, SHR 0) over the shorter G→F→D→A→S."""
        proto.join(node_id("E"))
        selection = proto.join(node_id("G"))
        assert selection.candidate.merge_node == node_id("S")
        assert selection.candidate.graft_path == (
            node_id("S"),
            node_id("B"),
            node_id("G"),
        )
        # The rejected shorter option did exist:
        assert selection.num_candidates >= 2
        assert selection.candidate.total_delay == pytest.approx(3.0)
        assert selection.spf_delay == pytest.approx(2.8)

    def test_f_bound_forces_merge_at_d(self, proto):
        """F→B→S and F→G→B→S exceed 1.3 × SPF; F merges at D."""
        proto.join(node_id("E"))
        proto.join(node_id("G"))
        selection = proto.join(node_id("F"))
        assert selection.candidate.merge_node == node_id("D")
        assert selection.candidate.graft_path == (node_id("D"), node_id("F"))
        assert not selection.fallback
        # The infeasible candidates were enumerated but filtered.
        assert selection.num_candidates > selection.num_feasible

    def test_final_tree_shape(self, proto):
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        assert proto.tree.tree_links() == {
            (node_id("S"), node_id("A")),
            (node_id("A"), node_id("D")),
            (node_id("D"), node_id("E")),
            (node_id("S"), node_id("B")),
            (node_id("B"), node_id("G")),
            (node_id("D"), node_id("F")),
        }

    def test_shr_after_f(self, proto):
        """SHR_{S,D} = 4 after F joins (Condition I's trigger value)."""
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        shr = proto.shr_values()
        assert shr[node_id("D")] == 4
        assert shr[node_id("A")] == 2
        assert shr[node_id("B")] == 1
