"""General tree-reshaping tests beyond the Figure 5 walkthrough."""

import pytest

from repro.errors import MulticastError
from repro.graph.generators import node_id
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.reshape import apply_reshape, evaluate_reshape
from repro.multicast.validation import check_tree_invariants
from repro.routing.spf import dijkstra


class TestEvaluate:
    def test_source_never_reshapes(self, fig4):
        proto = SMRPProtocol(fig4, node_id("S"))
        proto.join(node_id("E"))
        with pytest.raises(MulticastError):
            evaluate_reshape(fig4, proto.tree, node_id("S"), 0.3)

    def test_no_alternative_no_reshape(self, line4):
        """On a path graph there is never an alternative attachment."""
        proto = SMRPProtocol(line4, 0, config=SMRPConfig(reshape_enabled=False))
        proto.join(3)
        decision = evaluate_reshape(line4, proto.tree, 3, 0.5)
        assert not decision.performed
        assert "no alternative" in decision.reason

    def test_equal_shr_refused(self, ring6):
        """Symmetric ring: the alternative has equal SHR — no oscillation."""
        proto = SMRPProtocol(ring6, 0, config=SMRPConfig(reshape_enabled=False))
        proto.join(2)
        decision = evaluate_reshape(ring6, proto.tree, 2, 10.0)
        assert not decision.performed

    def test_delay_bound_blocks_reshape(self, fig4):
        proto = SMRPProtocol(
            fig4, node_id("S"), config=SMRPConfig(d_thresh=0.3, reshape_enabled=False)
        )
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        # With a zero stretch budget the E->C->A->S switch (3.5 > 3.0) is
        # not allowed even though its SHR is better.
        decision = evaluate_reshape(fig4, proto.tree, node_id("E"), 0.0)
        assert not decision.performed
        assert "delay bound" in decision.reason

    def test_apply_rejects_negative_decision(self, fig4):
        proto = SMRPProtocol(fig4, node_id("S"))
        proto.join(node_id("E"))
        decision = evaluate_reshape(fig4, proto.tree, node_id("E"), 0.3)
        if not decision.performed:
            with pytest.raises(MulticastError):
                apply_reshape(proto.tree, decision)


class TestSubtreeMoves:
    def test_interior_node_moves_with_children(self, fig4):
        """Reshaping an interior node carries its whole subtree."""
        proto = SMRPProtocol(
            fig4, node_id("S"), config=SMRPConfig(d_thresh=0.3, reshape_enabled=False)
        )
        # The paper's join order crowds D's branch: E and F both hang
        # below D (Figure 4d).
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        tree = proto.tree
        assert tree.parent(node_id("F")) == node_id("D")
        assert tree.parent(node_id("E")) == node_id("D")
        decision = evaluate_reshape(fig4, tree, node_id("D"), 1.0)
        members_before = set(tree.members)
        subtree_before = tree.subtree_nodes(node_id("D"))
        if decision.performed:
            apply_reshape(tree, decision)
            assert set(tree.members) == members_before
            # The whole subtree moved together.
            assert tree.subtree_nodes(node_id("D")) >= subtree_before
            check_tree_invariants(tree)
        else:
            # No better interior attachment exists on this topology —
            # the evaluation must say so rather than oscillate.
            assert "does not improve" in decision.reason or (
                "delay bound" in decision.reason
            ) or ("no alternative" in decision.reason)


class TestInvariantsUnderChurn:
    def test_random_churn_keeps_tree_valid(self, waxman50):
        """Joins, leaves and automatic reshapes never corrupt the tree and
        never break the delay bound for non-fallback members."""
        proto = SMRPProtocol(
            waxman50, 0, config=SMRPConfig(d_thresh=0.4, reshape_shr_threshold=1)
        )
        sequence = [
            ("join", 5), ("join", 12), ("join", 23), ("join", 31),
            ("leave", 12), ("join", 44), ("join", 8), ("leave", 5),
            ("join", 19), ("join", 27), ("leave", 23), ("join", 36),
        ]
        for action, node in sequence:
            if action == "join":
                proto.join(node)
            else:
                proto.leave(node)
            check_tree_invariants(proto.tree)
        spf = dijkstra(waxman50, 0)
        if not proto.stats.fallback_joins:
            for m in proto.tree.members:
                assert (
                    proto.tree.delay_from_source(m)
                    <= 1.4 * spf.dist[m] + 1e-9
                )
