"""Tests for N-level hierarchical SMRP."""

import pytest

from repro.errors import AlreadyMemberError, ConfigurationError, NotMemberError
from repro.graph.nlevel import LevelSpec, n_level_topology
from repro.core.nlevel import NLevelMulticast
from repro.core.protocol import SMRPConfig
from repro.multicast.validation import check_tree_invariants
from repro.routing.failure_view import FailureSet


@pytest.fixture(scope="module")
def network():
    return n_level_topology(
        [
            LevelSpec(size=4, fanout=2, alpha=0.9, scale=120.0),
            LevelSpec(size=5, fanout=2, alpha=0.8, scale=60.0),
            LevelSpec(size=6, fanout=0, alpha=0.7, scale=30.0),
        ],
        seed=5,
    )


def leaf_member(network, leaf_index: int, skip_gateway: bool = True):
    leaf = network.leaf_domains()[leaf_index]
    for node in sorted(leaf.nodes):
        if skip_gateway and node == leaf.gateway:
            continue
        return node
    raise AssertionError("leaf domain has no usable node")


@pytest.fixture
def session(network):
    return NLevelMulticast(
        network, leaf_member(network, 0), config=SMRPConfig(d_thresh=0.5)
    )


class TestSetup:
    def test_source_must_be_leaf(self, network):
        root_node = min(network.root.nodes)
        with pytest.raises(ConfigurationError):
            NLevelMulticast(network, root_node)

    def test_unknown_source_rejected(self, network):
        with pytest.raises(ConfigurationError):
            NLevelMulticast(network, 10_000)


class TestMembership:
    def test_same_leaf_join(self, network, session):
        member = max(network.leaf_domains()[0].nodes)
        session.join(member)
        leaf_id = network.leaf_domains()[0].domain_id
        assert session.active_domains() == [leaf_id]
        assert session.end_to_end_delay(member) > 0

    def test_sibling_leaf_join_meets_at_mid_domain(self, network, session):
        """Leaves 0 and 1 share a mid-level parent: the data path must not
        touch the root domain."""
        member = leaf_member(network, 1)
        session.join(member)
        root_id = network.root.domain_id
        assert root_id not in session.active_domains()
        assert session.end_to_end_delay(member) > 0

    def test_cross_branch_join_crosses_root(self, network, session):
        member = leaf_member(network, 3)
        session.join(member)
        assert network.root.domain_id in session.active_domains()
        # The full chain is active: source leaf, mid, root, mid, leaf.
        assert len(session.active_domains()) == 5
        assert session.end_to_end_delay(member) > 0

    def test_double_join_rejected(self, network, session):
        member = leaf_member(network, 2)
        session.join(member)
        with pytest.raises(AlreadyMemberError):
            session.join(member)

    def test_leave_unwinds_relay_chain(self, network, session):
        member = leaf_member(network, 3)
        session.join(member)
        assert network.root.domain_id in session.active_domains()
        session.leave(member)
        assert network.root.domain_id not in session.active_domains()
        assert session.members == frozenset()

    def test_shared_relays_are_refcounted(self, network, session):
        a = leaf_member(network, 2)
        b = leaf_member(network, 3)
        session.join(a)
        session.join(b)
        session.leave(a)
        # b still needs the cross-branch chain through the root.
        assert network.root.domain_id in session.active_domains()
        assert session.end_to_end_delay(b) > 0
        session.leave(b)
        assert session.active_domains() == []

    def test_leave_unknown_rejected(self, session):
        with pytest.raises(NotMemberError):
            session.leave(99999)

    def test_trees_valid_in_all_domains(self, network, session):
        for index in range(4):
            member = leaf_member(network, index)
            if member != session.source:
                session.join(member)
        for domain_id in session.active_domains():
            check_tree_invariants(session.protocol(domain_id).tree)

    def test_delay_composition_cross_branch_exceeds_local(self, network, session):
        local = max(network.leaf_domains()[0].nodes)
        remote = leaf_member(network, 3)
        session.join(local)
        session.join(remote)
        assert session.end_to_end_delay(remote) > session.end_to_end_delay(local)


class TestRecovery:
    def test_leaf_failure_confined(self, network, session):
        member = leaf_member(network, 3)
        session.join(member)
        leaf_id = network.domain_of[member]
        tree = session.protocol(leaf_id).tree
        path = tree.path_from_source(member)
        failure = FailureSet.links((path[0], path[1]))
        report = session.recover(failure)
        if not report.domains_reconfigured:
            pytest.skip("failure did not cut the member in this layout")
        assert report.domains_reconfigured == [leaf_id]
        check_tree_invariants(session.protocol(leaf_id).tree)
        repair = report.repairs[leaf_id]
        if member in repair.unrecoverable:
            # Domain confinement is absolute: when the failed link is a
            # bridge *inside* the leaf domain, no intra-domain detour
            # exists and the member stays down — recovery never leaks
            # into other domains looking for one.
            assert not session.protocol(leaf_id).tree.is_member(member)
        else:
            assert session.end_to_end_delay(member) > 0

    def test_mid_level_failure_spares_leaves(self, network, session):
        member = leaf_member(network, 1)  # same branch, different leaf
        session.join(member)
        mid_id = network.lowest_common_ancestor(
            session.source_domain_id, network.domain_of[member]
        )
        mid_tree = session.protocol(mid_id).tree
        links = sorted(mid_tree.tree_links())
        report = session.recover(FailureSet.links(links[0]))
        assert set(report.domains_reconfigured) <= {mid_id}

    def test_unrelated_failure_touches_nothing(self, network, session):
        member = leaf_member(network, 1)
        session.join(member)
        idle_leaf = network.leaf_domains()[3]
        internal = [
            l.key
            for l in network.topology.links()
            if l.u in idle_leaf.nodes and l.v in idle_leaf.nodes
        ]
        report = session.recover(FailureSet.links(internal[0]))
        assert report.domains_reconfigured == []
        assert report.scope_nodes == 0
