"""Tests for candidate-path enumeration."""

import pytest

from repro.graph.generators import node_id
from repro.multicast.tree import MulticastTree
from repro.core.candidates import enumerate_candidates
from repro.core.shr import shr_table
from repro.routing.failure_view import FailureSet


@pytest.fixture
def fig4_tree(fig4):
    """Tree after E's join: S-A-D-E."""
    tree = MulticastTree(fig4, node_id("S"))
    tree.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
    return tree


class TestEnumeration:
    def test_candidates_for_g(self, fig4, fig4_tree):
        candidates = enumerate_candidates(
            fig4, fig4_tree, node_id("G"), shr_table(fig4_tree)
        )
        by_merge = {c.merge_node: c for c in candidates}
        # Valid merges: S (via B) and D (via F); A and E are unreachable
        # without crossing the tree first.
        assert set(by_merge) == {node_id("S"), node_id("D")}
        assert by_merge[node_id("S")].graft_path == (
            node_id("S"),
            node_id("B"),
            node_id("G"),
        )
        assert by_merge[node_id("S")].total_delay == pytest.approx(3.0)
        assert by_merge[node_id("D")].total_delay == pytest.approx(2.8)
        assert by_merge[node_id("D")].new_delay == pytest.approx(0.8)

    def test_sorted_by_shr_then_delay(self, fig4, fig4_tree):
        candidates = enumerate_candidates(
            fig4, fig4_tree, node_id("G"), shr_table(fig4_tree)
        )
        keys = [(c.shr, c.total_delay, c.merge_node) for c in candidates]
        assert keys == sorted(keys)

    def test_graft_paths_avoid_tree_interior(self, waxman50):
        tree = MulticastTree(waxman50, 0)
        # Build an arbitrary small tree.
        from repro.multicast.spf_protocol import SPFMulticastProtocol

        proto = SPFMulticastProtocol(waxman50, 0)
        proto.build([10, 20, 30])
        tree = proto.tree
        on_tree = set(tree.on_tree_nodes())
        candidates = enumerate_candidates(waxman50, tree, 45, shr_table(tree))
        assert candidates, "there must be at least one way onto the tree"
        for c in candidates:
            # interior of the graft path never touches the tree
            assert all(n not in on_tree for n in c.graft_path[1:])
            assert c.graft_path[0] == c.merge_node
            assert c.graft_path[-1] == 45

    def test_failures_respected(self, fig4, fig4_tree):
        failures = FailureSet.links((node_id("B"), node_id("G")))
        candidates = enumerate_candidates(
            fig4, fig4_tree, node_id("G"), shr_table(fig4_tree), failures=failures
        )
        # G can still merge at S, but only via the longer G-F-B-S route.
        by_merge = {c.merge_node: c for c in candidates}
        assert set(by_merge) == {node_id("S"), node_id("D")}
        assert by_merge[node_id("S")].graft_path == (
            node_id("S"),
            node_id("B"),
            node_id("F"),
            node_id("G"),
        )
        for c in candidates:
            path = list(c.graft_path)
            assert not failures.path_affected(path)

    def test_allowed_merge_nodes_filter(self, fig4, fig4_tree):
        candidates = enumerate_candidates(
            fig4,
            fig4_tree,
            node_id("G"),
            shr_table(fig4_tree),
            allowed_merge_nodes=frozenset({node_id("D")}),
        )
        assert {c.merge_node for c in candidates} == {node_id("D")}

    def test_missing_shr_values_skipped(self, fig4, fig4_tree):
        partial = {node_id("S"): 0}  # only the source's SHR is known
        candidates = enumerate_candidates(fig4, fig4_tree, node_id("G"), partial)
        assert {c.merge_node for c in candidates} == {node_id("S")}

    def test_unreachable_joiner_returns_empty(self, fig4, fig4_tree):
        # Isolate G entirely.
        failures = FailureSet.nodes(node_id("B"), node_id("F"))
        candidates = enumerate_candidates(
            fig4, fig4_tree, node_id("G"), shr_table(fig4_tree), failures=failures
        )
        assert candidates == []
