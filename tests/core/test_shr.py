"""Tests for the SHR metric (Eq. 1 and Eq. 2)."""

import pytest

from repro.graph.generators import node_id
from repro.multicast.tree import MulticastTree
from repro.core.shr import (
    link_utilisation,
    shr_direct,
    shr_excluding_subtree,
    shr_incremental,
    shr_table,
    subtree_member_counts,
)


@pytest.fixture
def fig1_tree(fig1):
    tree = MulticastTree(fig1, node_id("S"))
    tree.graft([node_id("S"), node_id("A"), node_id("C")])
    tree.graft([node_id("A"), node_id("D")])
    return tree


class TestPaperValues:
    def test_shr_sc_is_three(self, fig1_tree):
        """Paper §3.1: SHR_{S,C} = N_{L_SA} + N_{L_AC} = 2 + 1 = 3."""
        assert shr_direct(fig1_tree, node_id("C")) == 3

    def test_shr_of_source_is_zero(self, fig1_tree):
        assert shr_direct(fig1_tree, node_id("S")) == 0
        assert shr_incremental(fig1_tree)[node_id("S")] == 0

    def test_figure4_shr_after_e_joins(self, fig4):
        """Paper Figure 4(b): SHR_{S,D} = 2 after E's join."""
        tree = MulticastTree(fig4, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
        assert shr_direct(tree, node_id("D")) == 2

    def test_figure4_shr_after_f_joins(self, fig4):
        """Paper §3.2.3: SHR_{S,D} rises from 2 to 4 after F's join."""
        tree = MulticastTree(fig4, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
        tree.graft([node_id("D"), node_id("F")])
        assert shr_direct(tree, node_id("D")) == 4


class TestEquivalence:
    def test_direct_equals_incremental(self, fig1_tree):
        table = shr_incremental(fig1_tree)
        for node in fig1_tree.on_tree_nodes():
            assert table[node] == shr_direct(fig1_tree, node)

    def test_shr_table_alias(self, fig1_tree):
        assert shr_table(fig1_tree) == shr_incremental(fig1_tree)


class TestSubtreeCounts:
    def test_counts(self, fig1_tree):
        counts = subtree_member_counts(fig1_tree)
        assert counts[node_id("S")] == 2
        assert counts[node_id("A")] == 2
        assert counts[node_id("C")] == 1

    def test_interior_member_counts_itself(self, fig4):
        tree = MulticastTree(fig4, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("D")])
        tree.graft([node_id("D"), node_id("E")])
        counts = subtree_member_counts(tree)
        assert counts[node_id("D")] == 2  # D itself plus E

    def test_link_utilisation(self, fig1_tree):
        util = link_utilisation(fig1_tree)
        assert util[(node_id("S"), node_id("A"))] == 2
        assert util[(node_id("A"), node_id("C"))] == 1


class TestAdjustedShr:
    def test_excluding_own_contribution(self, fig4):
        """Figure 5: adjusted comparison when E evaluates a reshape."""
        tree = MulticastTree(fig4, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
        tree.graft([node_id("D"), node_id("F")])
        tree.graft([node_id("S"), node_id("B"), node_id("G")])
        # Raw values: SHR_D = 4, SHR_A = 2.
        assert shr_direct(tree, node_id("D")) == 4
        assert shr_direct(tree, node_id("A")) == 2
        # As if E had left: D drops to 2, A drops to 1.
        assert shr_excluding_subtree(tree, node_id("D"), node_id("E")) == 2
        assert shr_excluding_subtree(tree, node_id("A"), node_id("E")) == 1

    def test_excluding_disjoint_path_changes_nothing(self, fig4):
        tree = MulticastTree(fig4, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
        tree.graft([node_id("S"), node_id("B"), node_id("G")])
        # G's path shares nothing with B's branch... E's removal does not
        # touch SHR of B (disjoint paths).
        assert shr_excluding_subtree(
            tree, node_id("B"), node_id("E")
        ) == shr_direct(tree, node_id("B"))

    def test_excluding_whole_subtree(self, fig4):
        """Moving an interior node discounts its entire subtree."""
        tree = MulticastTree(fig4, node_id("S"))
        tree.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
        tree.graft([node_id("D"), node_id("F")])
        # D's subtree holds 2 members (E, F); path S-A-D overlaps S-A for A.
        assert shr_excluding_subtree(tree, node_id("A"), node_id("D")) == 0
