"""Tests for the hierarchical recovery architecture (§3.3.3)."""

import pytest

from repro.errors import AlreadyMemberError, ConfigurationError, NotMemberError
from repro.graph.transit_stub import TransitStubConfig, transit_stub_topology
from repro.core.hierarchy import HierarchicalMulticast
from repro.core.protocol import SMRPConfig
from repro.multicast.validation import check_tree_invariants
from repro.routing.failure_view import FailureSet


@pytest.fixture(scope="module")
def network():
    return transit_stub_topology(
        TransitStubConfig(
            transit_nodes=3, stubs_per_transit=2, stub_size=6, seed=11
        )
    )


def pick_source(network):
    """A non-gateway node of the first stub domain."""
    stub = network.stub_domains[0]
    return min(n for n in stub.nodes if n != stub.gateway)


def pick_member(network, domain_index):
    stub = network.stub_domains[domain_index]
    return max(n for n in stub.nodes if n != stub.gateway)


class TestSetup:
    def test_source_must_be_stub_node(self, network):
        transit_node = min(network.transit_domain.nodes)
        with pytest.raises(ConfigurationError):
            HierarchicalMulticast(network, transit_node)

    def test_unknown_source_rejected(self, network):
        with pytest.raises(ConfigurationError):
            HierarchicalMulticast(network, 10_000)


class TestMembership:
    def test_same_domain_join_stays_local(self, network):
        session = HierarchicalMulticast(network, pick_source(network))
        member = pick_member(network, 0)
        session.join(member)
        assert session.active_domains() == [network.stub_domains[0].domain_id]

    def test_remote_join_activates_chain(self, network):
        session = HierarchicalMulticast(network, pick_source(network))
        member = pick_member(network, 3)
        session.join(member)
        active = session.active_domains()
        assert 0 in active  # transit domain
        assert network.stub_domains[0].domain_id in active  # source domain
        assert network.domain_of[member] in active
        # The remote domain's agent is a member of the transit tree.
        transit_tree = session.protocol(0).tree
        assert transit_tree.is_member(network.domains[network.domain_of[member]].gateway)

    def test_double_join_rejected(self, network):
        session = HierarchicalMulticast(network, pick_source(network))
        member = pick_member(network, 1)
        session.join(member)
        with pytest.raises(AlreadyMemberError):
            session.join(member)

    def test_leave_deactivates_empty_chain(self, network):
        session = HierarchicalMulticast(network, pick_source(network))
        member = pick_member(network, 2)
        session.join(member)
        session.leave(member)
        # Everything wound down: only possibly the source domain remains.
        assert 0 not in session.active_domains()

    def test_leave_unknown_rejected(self, network):
        session = HierarchicalMulticast(network, pick_source(network))
        with pytest.raises(NotMemberError):
            session.leave(pick_member(network, 2))

    def test_backbone_member_rejected(self, network):
        session = HierarchicalMulticast(network, pick_source(network))
        with pytest.raises(ConfigurationError):
            session.join(min(network.transit_domain.nodes))


class TestMetrics:
    def test_end_to_end_delay_positive_and_composite(self, network):
        session = HierarchicalMulticast(network, pick_source(network))
        local = pick_member(network, 0)
        remote = pick_member(network, 4)
        session.join(local)
        session.join(remote)
        assert session.end_to_end_delay(local) > 0
        # Remote members cross the backbone: strictly larger delay than
        # the intra-domain member (gateway links are long).
        assert session.end_to_end_delay(remote) > session.end_to_end_delay(local)

    def test_total_cost_sums_domains(self, network):
        session = HierarchicalMulticast(network, pick_source(network))
        session.join(pick_member(network, 0))
        base_cost = session.total_cost()
        session.join(pick_member(network, 3))
        assert session.total_cost() > base_cost


class TestDomainConfinedRecovery:
    def test_stub_failure_confined(self, network):
        """A failure inside a member's stub reconfigures only that stub."""
        session = HierarchicalMulticast(
            network, pick_source(network), config=SMRPConfig(d_thresh=0.5)
        )
        remote = pick_member(network, 3)
        session.join(remote)
        domain_id = network.domain_of[remote]
        stub_tree = session.protocol(domain_id).tree
        path = stub_tree.path_from_source(remote)
        failure = FailureSet.links((path[0], path[1]))
        report = session.recover(failure)
        if not report.domains_reconfigured:
            pytest.skip("failure did not disconnect the member in this layout")
        assert report.domains_reconfigured == [domain_id]
        check_tree_invariants(session.protocol(domain_id).tree)

    def test_transit_failure_spares_stubs(self, network):
        """A backbone failure reconfigures the transit domain only."""
        session = HierarchicalMulticast(network, pick_source(network))
        members = [pick_member(network, i) for i in (1, 3, 5)]
        for m in members:
            session.join(m)
        transit_tree = session.protocol(0).tree
        links = sorted(transit_tree.tree_links())
        failure = FailureSet.links(links[0])
        report = session.recover(failure)
        assert set(report.domains_reconfigured) <= {0}
        # Stub trees untouched; every member still has a delay.
        for m in members:
            assert session.end_to_end_delay(m) > 0

    def test_agent_node_failure_marks_domain_dead(self, network):
        """A dead agent cannot be healed by confined recovery; the domain
        is reported dead instead of crashing the session."""
        session = HierarchicalMulticast(network, pick_source(network))
        member = pick_member(network, 3)
        session.join(member)
        domain = network.domains[network.domain_of[member]]
        report = session.recover(FailureSet.nodes(domain.gateway))
        assert domain.domain_id in report.dead_domains
        assert member not in session.members
        # Other domains were never touched.
        assert domain.domain_id not in session.active_domains()

    def test_unrelated_failure_touches_nothing(self, network):
        session = HierarchicalMulticast(network, pick_source(network))
        session.join(pick_member(network, 0))
        # Fail a link in an inactive stub domain.
        idle = network.stub_domains[4]
        internal = [
            l.key
            for l in network.topology.links()
            if l.u in idle.nodes and l.v in idle.nodes
        ]
        report = session.recover(FailureSet.links(internal[0]))
        assert report.domains_reconfigured == []
        assert report.scope_nodes == 0
