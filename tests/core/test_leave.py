"""Tests for the Leave_Req walk."""

import pytest

from repro.errors import NotMemberError
from repro.graph.generators import node_id
from repro.multicast.tree import MulticastTree
from repro.core.leave import process_leave


@pytest.fixture
def tree(fig4):
    """S-A-D-E with extra member F under D."""
    t = MulticastTree(fig4, node_id("S"))
    t.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
    t.graft([node_id("D"), node_id("F")])
    return t


class TestLeave:
    def test_leaf_leave_stops_at_shared_relay(self, tree):
        outcome = process_leave(tree, node_id("E"))
        assert outcome.released_nodes == (node_id("E"),)
        assert outcome.stopped_at == node_id("D")
        assert outcome.hops_travelled == 1

    def test_cascading_leave(self, tree):
        process_leave(tree, node_id("E"))
        outcome = process_leave(tree, node_id("F"))
        # F's departure empties D and A as well.
        assert outcome.released_nodes == (node_id("F"), node_id("D"), node_id("A"))
        assert outcome.stopped_at == node_id("S")
        assert outcome.hops_travelled == 3
        assert tree.on_tree_nodes() == [node_id("S")]

    def test_interior_member_leave_is_local(self, fig4):
        t = MulticastTree(fig4, node_id("S"))
        t.graft([node_id("S"), node_id("A"), node_id("D")])
        t.graft([node_id("D"), node_id("E")])
        outcome = process_leave(t, node_id("D"))
        assert outcome.released_nodes == ()
        assert outcome.stopped_at == node_id("D")
        assert outcome.hops_travelled == 0
        assert t.is_on_tree(node_id("D"))

    def test_non_member_rejected(self, tree):
        with pytest.raises(NotMemberError):
            process_leave(tree, node_id("B"))
