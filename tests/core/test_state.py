"""Tests for distributed SMRP state maintenance and message accounting."""

import pytest

from repro.errors import ConfigurationError, NotOnTreeError
from repro.graph.generators import node_id
from repro.multicast.tree import MulticastTree
from repro.core.shr import shr_table, subtree_member_counts
from repro.core.state import StateManager


@pytest.fixture
def tree(fig4):
    t = MulticastTree(fig4, node_id("S"))
    t.graft([node_id("S"), node_id("A"), node_id("D"), node_id("E")])
    return t


class TestConsistency:
    def test_initial_state_matches_tree(self, tree):
        manager = StateManager(tree)
        counts = subtree_member_counts(tree)
        shr = shr_table(tree)
        for node in tree.on_tree_nodes():
            state = manager.state_of(node)
            assert state.n_r == counts[node]
            assert state.shr == shr[node]
            assert state.consistent()

    def test_interface_counts(self, tree):
        tree.graft([node_id("D"), node_id("F")])
        manager = StateManager(tree)
        state = manager.state_of(node_id("D"))
        assert state.n_per_interface == {node_id("E"): 1, node_id("F"): 1}

    def test_off_tree_query_rejected(self, tree):
        manager = StateManager(tree)
        with pytest.raises(NotOnTreeError):
            manager.shr(node_id("B"))

    def test_invalid_mode_rejected(self, tree):
        with pytest.raises(ConfigurationError):
            StateManager(tree, mode="psychic")

    def test_state_follows_graft_and_prune(self, tree):
        manager = StateManager(tree)
        tree.graft([node_id("D"), node_id("F")])
        manager.notify_graft([node_id("D"), node_id("F")])
        assert manager.shr(node_id("D")) == 4
        tree.prune(node_id("F"))
        manager.notify_prune(node_id("D"))
        assert manager.shr(node_id("D")) == 2


class TestConditionI:
    def test_delta_tracks_upstream_growth(self, tree):
        manager = StateManager(tree)
        assert manager.condition_i_delta(node_id("E")) == 0
        tree.graft([node_id("D"), node_id("F")])
        manager.notify_graft([node_id("D"), node_id("F")])
        # E's upstream D went from SHR 2 to 4.
        assert manager.condition_i_delta(node_id("E")) == 2

    def test_baseline_reset(self, tree):
        manager = StateManager(tree)
        tree.graft([node_id("D"), node_id("F")])
        manager.notify_graft([node_id("D"), node_id("F")])
        manager.record_reshape_baseline(node_id("E"))
        assert manager.condition_i_delta(node_id("E")) == 0

    def test_source_has_no_delta(self, tree):
        manager = StateManager(tree)
        assert manager.condition_i_delta(node_id("S")) == 0


class TestMessageAccounting:
    def test_eager_charges_pushes(self, tree):
        manager = StateManager(tree, mode="eager")
        tree.graft([node_id("D"), node_id("F")])
        manager.notify_graft([node_id("D"), node_id("F")])
        assert manager.counters.n_updates > 0
        assert manager.counters.shr_pushes > 0
        assert manager.counters.shr_pulls == 0

    def test_deferred_charges_pulls_on_demand(self, tree):
        manager = StateManager(tree, mode="deferred")
        tree.graft([node_id("D"), node_id("F")])
        manager.notify_graft([node_id("D"), node_id("F")])
        assert manager.counters.shr_pushes == 0
        pulls_before = manager.counters.shr_pulls
        _ = manager.shr(node_id("E"))
        assert manager.counters.shr_pulls > pulls_before

    def test_deferred_values_still_correct(self, tree):
        manager = StateManager(tree, mode="deferred")
        tree.graft([node_id("D"), node_id("F")])
        manager.notify_graft([node_id("D"), node_id("F")])
        assert manager.shr_snapshot() == shr_table(tree)

    def test_deferred_cheaper_under_rare_queries(self, tree):
        """§3.3.2's point: amortizing SHR maintenance into joins wins when
        queries are rarer than membership changes."""
        eager = StateManager(tree, mode="eager")
        deferred = StateManager(tree.copy(), mode="deferred")
        # Several membership changes, zero queries.
        for manager in (eager, deferred):
            t = manager.tree
            t.graft([node_id("D"), node_id("F")])
            manager.notify_graft([node_id("D"), node_id("F")])
            t.prune(node_id("F"))
            manager.notify_prune(node_id("D"))
        assert deferred.counters.total < eager.counters.total
