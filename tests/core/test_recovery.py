"""Tests for local/global detour recovery (paper §4.3.1 and Figure 1)."""

import pytest

from repro.errors import RecoveryError, UnrecoverableFailureError
from repro.graph.generators import node_id
from repro.multicast.tree import MulticastTree
from repro.multicast.validation import check_tree_invariants
from repro.core.recovery import (
    estimate_restoration_latency,
    global_detour_recovery,
    local_detour_recovery,
    repair_tree,
    worst_case_failure,
)
from repro.routing.failure_view import FailureSet
from repro.routing.link_state import ConvergenceModel


@pytest.fixture
def fig1_tree(fig1):
    """Figure 1(a): SPF tree S-A-{C,D}, members C and D."""
    tree = MulticastTree(fig1, node_id("S"))
    tree.graft([node_id("S"), node_id("A"), node_id("C")])
    tree.graft([node_id("A"), node_id("D")])
    return tree


class TestFigure1Economics:
    """The motivating example: RD_local = 2 beats RD_global = 3."""

    def test_local_detour_via_c(self, fig1, fig1_tree):
        failure = FailureSet.links((node_id("A"), node_id("D")))
        result = local_detour_recovery(fig1, fig1_tree, node_id("D"), failure)
        assert result.attach_node == node_id("C")
        assert result.restoration_path == (node_id("D"), node_id("C"))
        assert result.recovery_distance == 2.0  # the paper's RD_D = 2
        # End-to-end delay grows to 4 (S-A-C-D) — the accepted trade.
        assert result.new_end_to_end_delay == 4.0

    def test_global_detour_via_b(self, fig1, fig1_tree):
        failure = FailureSet.links((node_id("A"), node_id("D")))
        result = global_detour_recovery(fig1, fig1_tree, node_id("D"), failure)
        assert result.attach_node == node_id("S")
        assert result.restoration_path == (node_id("D"), node_id("B"), node_id("S"))
        assert result.recovery_distance == 3.0
        assert result.new_end_to_end_delay == 3.0

    def test_local_never_longer_than_global_same_tree(self, fig1, fig1_tree):
        failure = FailureSet.links((node_id("A"), node_id("D")))
        local = local_detour_recovery(fig1, fig1_tree, node_id("D"), failure)
        global_ = global_detour_recovery(fig1, fig1_tree, node_id("D"), failure)
        assert local.recovery_distance <= global_.recovery_distance


class TestWorstCaseFailure:
    def test_fails_source_incident_link(self, fig1_tree):
        failure = worst_case_failure(fig1_tree, node_id("D"))
        assert failure.link_failed(node_id("S"), node_id("A"))

    def test_source_member_rejected(self, fig1_tree):
        with pytest.raises(RecoveryError):
            worst_case_failure(fig1_tree, node_id("S"))


class TestEdgeCases:
    def test_member_still_connected(self, fig1, fig1_tree):
        failure = FailureSet.links((node_id("A"), node_id("D")))
        result = local_detour_recovery(fig1, fig1_tree, node_id("C"), failure)
        assert result.already_connected
        assert result.recovery_distance == 0.0

    def test_source_failure_unrecoverable(self, fig1, fig1_tree):
        with pytest.raises(UnrecoverableFailureError):
            local_detour_recovery(
                fig1, fig1_tree, node_id("D"), FailureSet.nodes(node_id("S"))
            )

    def test_isolated_member_unrecoverable(self, line4):
        tree = MulticastTree(line4, 0)
        tree.graft([0, 1, 2, 3])
        failure = FailureSet.links((1, 2))
        with pytest.raises(UnrecoverableFailureError):
            local_detour_recovery(line4, tree, 3, failure)
        with pytest.raises(UnrecoverableFailureError):
            global_detour_recovery(line4, tree, 3, failure)

    def test_restoration_avoids_failed_components(self, grid5):
        tree = MulticastTree(grid5, 0)
        tree.graft([0, 1, 2, 3])  # top row
        tree.graft([3, 4])
        failure = FailureSet.links((0, 1)).union(FailureSet.nodes(6))
        result = local_detour_recovery(grid5, tree, 4, failure)
        assert not failure.path_affected(result.restoration_path)


class TestLatencyModel:
    def test_local_beats_global_latency(self, fig1, fig1_tree):
        """The paper's core claim: no re-convergence wait for local detours."""
        failure = FailureSet.links((node_id("A"), node_id("D")))
        model = ConvergenceModel(detection_delay=30.0)
        local = local_detour_recovery(fig1, fig1_tree, node_id("D"), failure)
        global_ = global_detour_recovery(fig1, fig1_tree, node_id("D"), failure)
        t_local = estimate_restoration_latency(
            fig1, fig1_tree, local, failure, convergence=model
        )
        t_global = estimate_restoration_latency(
            fig1, fig1_tree, global_, failure, convergence=model
        )
        assert t_local < t_global


class TestRepairTree:
    def test_repairs_all_members(self, fig1, fig1_tree):
        failure = FailureSet.links((node_id("S"), node_id("A")))
        report = repair_tree(fig1, fig1_tree, failure, strategy="local")
        repaired = report.repaired_tree
        check_tree_invariants(repaired)
        assert repaired.members == fig1_tree.members
        assert not report.unrecoverable
        # Both members reconnected and no failed link is used.
        for u, v in repaired.tree_links():
            assert failure.link_usable(u, v)

    def test_local_repair_compounds(self, fig1, fig1_tree):
        """The first recovered member becomes an attachment for the next."""
        failure = FailureSet.links((node_id("S"), node_id("A")))
        report = repair_tree(fig1, fig1_tree, failure, strategy="local")
        # C reconnects via D after D (or vice versa) reaches the source:
        # total new-link distance is bounded by sequential detours.
        assert len(report.recoveries) == 2
        assert report.total_recovery_distance > 0

    def test_global_repair(self, fig1, fig1_tree):
        failure = FailureSet.links((node_id("S"), node_id("A")))
        report = repair_tree(fig1, fig1_tree, failure, strategy="global")
        check_tree_invariants(report.repaired_tree)
        assert report.repaired_tree.members == fig1_tree.members

    def test_unknown_strategy_rejected(self, fig1, fig1_tree):
        with pytest.raises(RecoveryError):
            repair_tree(fig1, fig1_tree, FailureSet.links((0, 1)), strategy="magic")

    def test_unrecoverable_member_reported(self, line4):
        tree = MulticastTree(line4, 0)
        tree.graft([0, 1, 2, 3])
        report = repair_tree(line4, tree, FailureSet.links((1, 2)))
        assert report.unrecoverable == [3]

    def test_failed_member_node_dropped(self, fig1, fig1_tree):
        failure = FailureSet.nodes(node_id("D"))
        report = repair_tree(fig1, fig1_tree, failure)
        assert node_id("D") in report.unrecoverable
        assert node_id("C") in report.repaired_tree.members


class TestRepairMemoization:
    """The O(k) SPF bound: one post-failure SPF per pending member.

    The old loop recomputed every pending member's SPF every round —
    O(k²) runs for k disconnected members.  ``repair_tree`` now memoises
    each member's post-failure SPF for the whole repair (the
    ``(topology, member, failures)`` triple is invariant while the tree
    grows), so ``recovery.repair.spf_runs`` is bounded by k — with
    results identical to the naive per-round recomputation.
    """

    def _session(self, waxman50):
        """A multi-member SPF session whose worst-case failure strands
        several members at once (multiple nearest-first rounds)."""
        from repro.multicast.spf_protocol import SPFMulticastProtocol

        import numpy as np

        nodes = sorted(waxman50.nodes())
        source = nodes[0]
        rng = np.random.default_rng(7)
        members = [
            int(m) for m in rng.choice(nodes[1:], size=12, replace=False)
        ]
        tree = SPFMulticastProtocol(waxman50, source, self_check=False).build(
            members
        )
        failure = worst_case_failure(tree, members[0])
        return tree, failure

    @staticmethod
    def _naive_repair(topology, tree, failures, strategy="local"):
        """The pre-memoization loop: fresh SPF for every pending member,
        every round — the reference the memoized repair must match."""
        from repro.core.recovery import TreeRepairReport, _surviving_subtree
        from repro.graph.topology import edge_key

        repaired = _surviving_subtree(tree, failures)
        report = TreeRepairReport(repaired_tree=repaired, strategy=strategy)
        pending = [
            m
            for m in tree.disconnected_members(failures)
            if not failures.node_failed(m)
        ]
        report.unrecoverable.extend(
            m
            for m in tree.disconnected_members(failures)
            if failures.node_failed(m)
        )
        recovery_fn = (
            local_detour_recovery if strategy == "local" else global_detour_recovery
        )
        while pending:
            options = []
            for member in pending:
                try:
                    result = recovery_fn(topology, repaired, member, failures)
                except UnrecoverableFailureError:
                    continue
                options.append((result.recovery_distance, member, result))
            if not options:
                report.unrecoverable.extend(sorted(pending))
                break
            if strategy == "local":
                options.sort(key=lambda item: (item[0], item[1]))
            _, chosen_member, chosen = options[0]
            graft = list(reversed(chosen.restoration_path))
            repaired.graft(graft)
            report.recoveries.append(chosen)
            report.new_links.update(
                edge_key(u, v) for u, v in zip(graft, graft[1:])
            )
            pending.remove(chosen_member)
        return report

    @staticmethod
    def _digest(report):
        return (
            report.strategy,
            report.recoveries,
            sorted(report.unrecoverable),
            sorted(report.new_links),
            sorted(report.repaired_tree.tree_links()),
            report.repaired_tree.members,
        )

    @pytest.mark.parametrize("strategy", ["local", "global"])
    def test_report_identical_to_naive_per_round_recomputation(
        self, waxman50, strategy
    ):
        tree, failure = self._session(waxman50)
        memoized = repair_tree(waxman50, tree, failure, strategy=strategy)
        naive = self._naive_repair(waxman50, tree, failure, strategy=strategy)
        assert self._digest(memoized) == self._digest(naive)

    def test_spf_runs_bounded_by_pending_members(self, waxman50):
        from repro.obs import Observability

        tree, failure = self._session(waxman50)
        pending = [
            m
            for m in tree.disconnected_members(failure)
            if not failure.node_failed(m)
        ]
        assert len(pending) >= 3  # multiple rounds, or the bound is trivial
        obs = Observability()
        report = repair_tree(waxman50, tree, failure, obs=obs)
        counters = obs.metrics.counters("recovery")
        assert counters["recovery.repair.spf_runs"] <= len(pending)
        assert len(report.recoveries) + len(report.unrecoverable) == len(pending)

    def test_attempt_counters_unchanged_by_memoization(self, waxman50):
        # The memo must not leak the caller's obs into the per-member
        # recovery functions: recovery.*.attempts counts stay exactly as
        # before the optimisation (zero from inside repair_tree).
        from repro.obs import Observability

        tree, failure = self._session(waxman50)
        obs = Observability()
        repair_tree(waxman50, tree, failure, obs=obs)
        counters = obs.metrics.counters("recovery")
        assert "recovery.local.attempts" not in counters
        assert "recovery.global.attempts" not in counters

    def test_external_route_cache_composes_with_the_memo(self, waxman50):
        from repro.obs import Observability
        from repro.routing.route_cache import RouteCache

        tree, failure = self._session(waxman50)
        plain = repair_tree(waxman50, tree, failure)
        cache = RouteCache()
        route_obs = Observability()
        cached = repair_tree(
            waxman50, tree, failure, route_cache=cache, route_obs=route_obs
        )
        assert self._digest(plain) == self._digest(cached)
        # A second repair with the same cache serves SPF state from it.
        obs2 = Observability()
        again = repair_tree(
            waxman50, tree, failure, obs=obs2, route_cache=cache
        )
        assert self._digest(plain) == self._digest(again)
        counters = obs2.metrics.counters("recovery")
        assert counters["recovery.repair.spf_runs"] >= 1  # memo misses...
        hits = obs2.metrics.counters("cache.routes")
        assert hits.get("cache.routes.hits", 0) >= 1  # ...served by the cache

    def test_memo_rejects_reuse_across_repair_contexts(self, fig1):
        # The memo keys on root alone because (topology, weight, failures)
        # are invariant within one repair; reusing it across failure sets
        # or topologies must fail loudly, not serve stale paths.
        from repro.core.recovery import _RepairPathsMemo
        from repro.obs import NULL_OBS

        memo = _RepairPathsMemo(None, NULL_OBS.counter("spf_runs"))
        failure = FailureSet.links((node_id("S"), node_id("A")))
        memo.shortest_paths(fig1, node_id("C"), failures=failure)
        # Same context, another root: fine.
        memo.shortest_paths(fig1, node_id("D"), failures=failure)
        with pytest.raises(RecoveryError, match="repair context"):
            memo.shortest_paths(fig1, node_id("C"))  # different failures
        with pytest.raises(RecoveryError, match="repair context"):
            memo.shortest_paths(
                fig1, node_id("C"), weight="hops", failures=failure
            )
