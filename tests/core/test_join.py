"""Tests for the Path Selection Criterion."""

import pytest

from repro.errors import ConfigurationError, JoinRejectedError
from repro.core.candidates import Candidate
from repro.core.join import select_path


def make_candidate(merge, shr, total, new=1.0):
    return Candidate(
        merge_node=merge,
        graft_path=(merge, 99),
        new_delay=new,
        total_delay=total,
        shr=shr,
    )


class TestSelection:
    def test_min_shr_wins_within_bound(self):
        candidates = [
            make_candidate(1, shr=3, total=10.0),
            make_candidate(2, shr=0, total=12.0),
        ]
        sel = select_path(candidates, spf_delay=10.0, d_thresh=0.3)
        assert sel.candidate.merge_node == 2
        assert not sel.fallback
        assert sel.within_bound

    def test_bound_filters_min_shr(self):
        candidates = [
            make_candidate(1, shr=3, total=10.0),
            make_candidate(2, shr=0, total=14.0),  # > 13.0 bound
        ]
        sel = select_path(candidates, spf_delay=10.0, d_thresh=0.3)
        assert sel.candidate.merge_node == 1
        assert sel.num_feasible == 1

    def test_shr_tie_broken_by_delay(self):
        candidates = [
            make_candidate(1, shr=2, total=11.0),
            make_candidate(2, shr=2, total=10.5),
        ]
        sel = select_path(candidates, spf_delay=10.0, d_thresh=0.3)
        assert sel.candidate.merge_node == 2

    def test_full_tie_broken_by_node_id(self):
        candidates = [
            make_candidate(7, shr=2, total=10.5),
            make_candidate(3, shr=2, total=10.5),
        ]
        sel = select_path(candidates, spf_delay=10.0, d_thresh=0.3)
        assert sel.candidate.merge_node == 3

    def test_dthresh_zero_still_accepts_spf_equal_path(self):
        candidates = [make_candidate(1, shr=5, total=10.0)]
        sel = select_path(candidates, spf_delay=10.0, d_thresh=0.0)
        assert not sel.fallback

    def test_boundary_exactly_at_bound_is_feasible(self):
        candidates = [make_candidate(1, shr=1, total=13.0)]
        sel = select_path(candidates, spf_delay=10.0, d_thresh=0.3)
        assert not sel.fallback


class TestFallback:
    def test_fallback_picks_min_delay(self):
        candidates = [
            make_candidate(1, shr=0, total=20.0),
            make_candidate(2, shr=5, total=15.0),
        ]
        sel = select_path(candidates, spf_delay=10.0, d_thresh=0.1)
        assert sel.fallback
        assert sel.candidate.merge_node == 2

    def test_fallback_can_be_disallowed(self):
        candidates = [make_candidate(1, shr=0, total=20.0)]
        with pytest.raises(JoinRejectedError):
            select_path(
                candidates, spf_delay=10.0, d_thresh=0.1, allow_fallback=False
            )

    def test_empty_candidates_always_rejected(self):
        with pytest.raises(JoinRejectedError):
            select_path([], spf_delay=10.0, d_thresh=0.3)


class TestValidation:
    def test_negative_dthresh_rejected(self):
        with pytest.raises(ConfigurationError):
            select_path([make_candidate(1, 0, 1.0)], spf_delay=1.0, d_thresh=-0.1)

    def test_negative_spf_rejected(self):
        with pytest.raises(ConfigurationError):
            select_path([make_candidate(1, 0, 1.0)], spf_delay=-1.0, d_thresh=0.3)
