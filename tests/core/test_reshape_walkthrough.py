"""The paper's Figure 5 walkthrough: F's join triggers E's reshape."""

import pytest

from repro.graph.generators import node_id
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.reshape import apply_reshape, evaluate_reshape
from repro.multicast.validation import check_tree_invariants


class TestFigure5Reshape:
    def test_manual_evaluation_matches_paper(self, fig4):
        """After F joins, E's re-selection finds E→C→A→S (merge at A)."""
        proto = SMRPProtocol(
            fig4, node_id("S"), config=SMRPConfig(d_thresh=0.3, reshape_enabled=False)
        )
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        decision = evaluate_reshape(proto.topology, proto.tree, node_id("E"), 0.3)
        assert decision.performed
        assert decision.new_merge_node == node_id("A")
        assert decision.new_path == (node_id("A"), node_id("C"), node_id("E"))
        # Adjusted comparison: A (1) strictly better than current D (2).
        assert decision.new_shr_adjusted < decision.current_shr_adjusted

    def test_apply_reshape_switches_path(self, fig4):
        proto = SMRPProtocol(
            fig4, node_id("S"), config=SMRPConfig(d_thresh=0.3, reshape_enabled=False)
        )
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        decision = evaluate_reshape(proto.topology, proto.tree, node_id("E"), 0.3)
        apply_reshape(proto.tree, decision)
        assert proto.tree.parent(node_id("E")) == node_id("C")
        assert proto.tree.parent(node_id("C")) == node_id("A")
        check_tree_invariants(proto.tree)

    def test_condition_i_triggers_automatically(self, fig4):
        """With reshaping enabled, F's join alone reshapes E (Figure 5)."""
        proto = SMRPProtocol(
            fig4,
            node_id("S"),
            config=SMRPConfig(d_thresh=0.3, reshape_enabled=True,
                              reshape_shr_threshold=2),
        )
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        assert proto.stats.reshapes_performed == 1
        assert proto.tree.parent(node_id("E")) == node_id("C")

    def test_reshape_does_not_break_delay_bound(self, fig4):
        proto = SMRPProtocol(fig4, node_id("S"), config=SMRPConfig(d_thresh=0.3))
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        # E's new path E-C-A-S has delay 3.5 <= 1.3 * 3.0.
        assert proto.tree.delay_from_source(node_id("E")) == pytest.approx(3.5)

    def test_high_threshold_suppresses_reshape(self, fig4):
        proto = SMRPProtocol(
            fig4,
            node_id("S"),
            config=SMRPConfig(d_thresh=0.3, reshape_shr_threshold=10),
        )
        for m in ("E", "G", "F"):
            proto.join(node_id(m))
        assert proto.stats.reshapes_performed == 0
        assert proto.tree.parent(node_id("E")) == node_id("D")
