"""Figure 7 — local detour vs. global detour (paper §4.3.1).

Paper setup: N=100, N_G=30, α=0.2, D_thresh=0.3, five random topologies;
for every member fail the source-incident link of its path and compare
the recovery distance of SMRP's local detour (y) against the SPF
baseline's post-re-convergence re-join (x).

Paper claims asserted here:
- most scatter points lie below the ``y = x`` diagonal;
- the average reduction of the recovery path is large (paper: ≈33%).
"""

from repro.experiments.fig7 import run_figure7


def run():
    return run_figure7(topologies=5, n=100, group_size=30, alpha=0.2, d_thresh=0.3)


def test_figure7_local_detour_beats_global(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.render())

    assert len(result.points) >= 100, "too few comparable members"
    # "most points are below the line y = x"
    assert result.fraction_at_or_below_diagonal > 0.8
    assert result.fraction_below_diagonal > 0.5
    # "the length of the recovery path via local detour is reduced by an
    # average of 33%" — assert a substantial reduction with slack for the
    # topology-model differences.
    assert result.reduction.mean > 0.15
    # Sanity: every point involves an actual restoration on both sides.
    assert all(p.rd_local > 0 and p.rd_global > 0 for p in result.points)
