"""Micro-benchmarks for the substrates (multi-round timings).

These are conventional performance benchmarks (Dijkstra, joins, topology
generation, DES throughput) rather than figure reproductions; they guard
against performance regressions that would make the paper-scale sweeps
impractical.
"""

import numpy as np
import pytest

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.routing.batch import dijkstra_multi
from repro.routing.spf import dijkstra
from repro.sim.engine import Simulator


@pytest.fixture(scope="module")
def topology100():
    return waxman_topology(WaxmanConfig(n=100, alpha=0.2, beta=0.25, seed=0)).topology


@pytest.fixture(scope="module")
def topology1000():
    return waxman_topology(WaxmanConfig(n=1000, alpha=0.2, beta=0.25, seed=0)).topology


def test_dijkstra_100_nodes(benchmark, topology100):
    result = benchmark(lambda: dijkstra(topology100, 0))
    assert len(result.dist) == 100


def test_dijkstra_multi_1000_nodes(benchmark, topology1000):
    """Controller-scale restoration batch: ~64 roots in one kernel call."""
    roots = topology1000.nodes()[::16]
    dijkstra_multi(topology1000, roots[:1])  # warm CSR + batch plan
    result = benchmark(lambda: dijkstra_multi(topology1000, roots))
    assert len(result) == len(roots)
    assert len(result.paths(roots[0]).dist) >= 1


def test_waxman_generation(benchmark):
    result = benchmark(
        lambda: waxman_topology(WaxmanConfig(n=100, alpha=0.2, beta=0.25, seed=1))
    )
    assert result.topology.is_connected()


def test_spf_tree_construction(benchmark, topology100):
    members = [int(m) for m in np.random.default_rng(5).choice(99, 30, False) + 1]

    def build():
        return SPFMulticastProtocol(topology100, 0, self_check=False).build(members)

    tree = benchmark(build)
    assert len(tree.members) == 30


def test_smrp_tree_construction(benchmark, topology100):
    members = [int(m) for m in np.random.default_rng(5).choice(99, 30, False) + 1]

    def build():
        proto = SMRPProtocol(
            topology100, 0, config=SMRPConfig(self_check=False)
        )
        return proto.build(members)

    tree = benchmark(build)
    assert len(tree.members) == 30


def test_des_event_throughput(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000
