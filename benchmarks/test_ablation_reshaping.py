"""Ablation — tree reshaping on/off under churn (paper §3.2.3).

Reshaping exists because join/leave churn skews incrementally built
trees.  This bench replays an identical churn workload with reshaping
disabled and enabled and measures the tree's survivability (its maximum
SHR — the paper's sharing measure) and the recovery distance of the
surviving members.
"""

import numpy as np

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.shr import shr_table
from repro.errors import UnrecoverableFailureError
from repro.metrics.recovery_metrics import worst_case_recovery
from repro.multicast.group import GroupAction, GroupWorkload


def churn_workload(topology, seed: int):
    rng = np.random.default_rng(seed)
    return GroupWorkload.churn(
        topology,
        0,
        rng,
        duration=400.0,
        mean_holding_time=120.0,
        mean_interarrival=8.0,
    )


def replay(topology, workload, reshape: bool):
    proto = SMRPProtocol(
        topology,
        0,
        config=SMRPConfig(
            d_thresh=0.3,
            reshape_enabled=reshape,
            reshape_shr_threshold=2,
            self_check=False,
        ),
    )
    for event in workload:
        if event.action is GroupAction.JOIN and not proto.tree.is_member(event.node):
            proto.join(event.node)
        elif event.action is GroupAction.LEAVE and proto.tree.is_member(event.node):
            proto.leave(event.node)
    return proto


def mean_recovery_distance(topology, tree) -> float:
    distances = []
    for member in tree.members:
        measurement = worst_case_recovery(topology, tree, member, "local")
        if measurement.recovered:
            distances.append(measurement.recovery_distance)
    return sum(distances) / len(distances) if distances else float("nan")


def run_ablation(seeds=range(8)):
    rows = []
    for seed in seeds:
        topology = waxman_topology(
            WaxmanConfig(n=100, alpha=0.2, beta=0.25, seed=seed)
        ).topology
        workload = churn_workload(topology, 500 + seed)
        frozen = replay(topology, workload, reshape=False)
        reshaped = replay(topology, workload, reshape=True)
        if not reshaped.tree.members:
            continue
        rows.append(
            {
                "max_shr_frozen": max(shr_table(frozen.tree).values()),
                "max_shr_reshaped": max(shr_table(reshaped.tree).values()),
                "rd_frozen": mean_recovery_distance(topology, frozen.tree),
                "rd_reshaped": mean_recovery_distance(topology, reshaped.tree),
                "reshapes": reshaped.stats.reshapes_performed,
            }
        )
    return rows


def test_reshaping_restores_survivability_under_churn(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    assert rows, "churn never left any members"
    total_reshapes = sum(r["reshapes"] for r in rows)
    mean_shr_frozen = sum(r["max_shr_frozen"] for r in rows) / len(rows)
    mean_shr_reshaped = sum(r["max_shr_reshaped"] for r in rows) / len(rows)
    print(
        f"\nchurn ablation over {len(rows)} runs: reshapes={total_reshapes}, "
        f"max SHR {mean_shr_frozen:.1f} (frozen) -> {mean_shr_reshaped:.1f} "
        f"(reshaped)"
    )
    # Reshaping actually fires under churn…
    assert total_reshapes > 0
    # …and never leaves the tree more concentrated than the frozen run.
    assert mean_shr_reshaped <= mean_shr_frozen + 1e-9
