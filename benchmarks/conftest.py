"""Shared configuration for the benchmark harness.

Each ``test_fig*.py`` module regenerates one figure of the paper's
evaluation (§4) and asserts its *shape* claims — who wins, in which
direction the trend runs, and that the overheads stay bounded.  Absolute
numbers differ from the paper's ns2/GT-ITM testbed; EXPERIMENTS.md records
the measured values side by side with the paper's.

Scale: the paper uses 100 scenarios per configuration point.  The benches
default to a reduced grid (set ``REPRO_BENCH_FULL=1`` to run the paper's
full grid) so that ``pytest benchmarks/ --benchmark-only`` completes in a
few minutes.
"""

from __future__ import annotations

import os

import pytest

#: Paper-scale grid: 10 topologies x 10 member sets per point.
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

TOPOLOGIES = 10 if FULL else 6
MEMBER_SETS = 10 if FULL else 3


@pytest.fixture(scope="session")
def grid() -> tuple[int, int]:
    return TOPOLOGIES, MEMBER_SETS
