"""Figure 6 — the hierarchical recovery architecture (paper §3.3.3).

The paper has no quantitative figure for the hierarchy; its claim is
structural: "any node/link failure inside a recovery domain is handled by
that domain" and "all tree reconfigurations are confined inside" it.
This bench quantifies that confinement against a flat SMRP instance on
the same transit-stub topology: the hierarchical recovery touches the
nodes of one domain, while the flat recovery may touch state anywhere.
"""

import numpy as np

from repro.graph.transit_stub import TransitStubConfig, transit_stub_topology
from repro.core.hierarchy import HierarchicalMulticast
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.recovery import repair_tree
from repro.routing.failure_view import FailureSet
from repro.routing.route_cache import RouteCache


def build_world(seed: int = 3):
    network = transit_stub_topology(
        TransitStubConfig(
            transit_nodes=4, stubs_per_transit=3, stub_size=8, seed=seed
        )
    )
    rng = np.random.default_rng(seed + 1)
    stub_nodes = [
        n
        for d in network.stub_domains
        for n in sorted(d.nodes)
        if n != d.gateway
    ]
    source = stub_nodes[0]
    members = [
        int(stub_nodes[i])
        for i in rng.choice(len(stub_nodes), size=12, replace=False)
        if stub_nodes[i] != source
    ]
    return network, source, members


def run_comparison():
    network, source, members = build_world()
    config = SMRPConfig(d_thresh=0.5)

    hierarchical = HierarchicalMulticast(network, source, config=config)
    for m in members:
        hierarchical.join(m)

    flat = SMRPProtocol(network.topology, source, config=config)
    flat.build(members)

    # Fail one internal link of a member-bearing stub domain.
    target_domain = network.domains[network.domain_of[members[0]]]
    internal = [
        link.key
        for link in network.topology.links()
        if link.u in target_domain.nodes and link.v in target_domain.nodes
    ]
    failure = FailureSet.links(internal[0])

    route_cache = RouteCache()
    report = hierarchical.recover(failure, route_cache=route_cache)
    flat_report = repair_tree(
        network.topology, flat.tree, failure, "local", route_cache=route_cache
    )
    return network, report, flat_report, target_domain


def test_hierarchical_recovery_confined(benchmark):
    network, report, flat_report, target_domain = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    total_nodes = network.topology.num_nodes
    print(
        f"\nhierarchical scope: {report.scope_nodes}/{total_nodes} nodes, "
        f"domains {report.domains_reconfigured}; flat scope: {total_nodes}"
    )
    # Reconfiguration is confined to the failing domain (or touched
    # nothing when the failed link was off-tree).
    assert set(report.domains_reconfigured) <= {target_domain.domain_id}
    assert report.scope_nodes <= len(target_domain.nodes)
    assert report.scope_nodes < total_nodes
    # The flat repair, by contrast, considers the whole network.
    assert flat_report.repaired_tree.topology.num_nodes == total_nodes


def test_hierarchical_membership_scales(benchmark):
    """Join cost stays domain-local: activating a member only builds
    state in its own domain chain."""

    def run():
        network, source, members = build_world(seed=9)
        session = HierarchicalMulticast(network, source)
        for m in members:
            session.join(m)
        return network, session

    network, session = benchmark.pedantic(run, rounds=1, iterations=1)
    active = session.active_domains()
    # Only domains that actually host members (plus transit + source
    # domain) are active — idle stubs hold zero session state.
    member_domains = {network.domain_of[m] for m in session.members}
    expected = member_domains | {0, session.source_domain.domain_id}
    assert set(active) <= expected
    assert session.total_cost() > 0
