"""Micro-benchmarks guarding the cost of observability instrumentation.

The contract (``src/repro/obs``): instrumentation left in place but
*disabled* must not measurably slow the hot paths.  Two mechanisms are
under test:

- the DES engine binds instruments only when an enabled ``Observability``
  is supplied and guards each update with one attribute check — so the
  ``obs=None`` and disabled-obs code paths are identical;
- coarser layers call shared no-op instruments unconditionally, whose
  methods are empty.

Timing ratios between two benchmarked runs are noisy on shared CI
hardware, so the guard asserts a *lenient* bound (disabled obs within 2x
of uninstrumented) while the enabled-mode tests assert exact counter
semantics rather than timing.
"""

import pytest

from repro.obs import Observability
from repro.sim.engine import Simulator

EVENTS = 10_000


def _pump(sim: Simulator) -> int:
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < EVENTS:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run()
    return count[0]


def test_des_throughput_without_obs(benchmark):
    assert benchmark(lambda: _pump(Simulator())) == EVENTS


def test_des_throughput_with_disabled_obs(benchmark):
    obs = Observability(enabled=False)
    assert benchmark(lambda: _pump(Simulator(obs=obs))) == EVENTS


def test_des_throughput_with_enabled_obs(benchmark):
    def run():
        obs = Observability()
        _pump(Simulator(obs=obs))
        return obs.metrics.counters("sim.engine.")["sim.engine.events_fired"]

    assert benchmark(run) == EVENTS


def test_disabled_obs_overhead_bounded():
    """Disabled observability stays within noise of no observability.

    Measured directly (not via pytest-benchmark) so the two timings come
    from the same interleaved loop and share warm caches; the 2x bound is
    deliberately lenient — the code paths are identical, so a real
    regression would blow far past it.
    """
    from time import perf_counter

    def best_of(make_sim, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            sim = make_sim()
            start = perf_counter()
            _pump(sim)
            best = min(best, perf_counter() - start)
        return best

    best_of(Simulator)  # warm-up
    bare = best_of(Simulator)
    disabled = best_of(lambda: Simulator(obs=Observability(enabled=False)))
    assert disabled < bare * 2.0, (
        f"disabled obs slowed the DES hot loop: {disabled:.4f}s vs {bare:.4f}s"
    )


def test_disabled_obs_registers_nothing():
    obs = Observability(enabled=False)
    _pump(Simulator(obs=obs))
    assert obs.metrics.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


def test_enabled_obs_counters_exact():
    obs = Observability()
    _pump(Simulator(obs=obs))
    counters = obs.metrics.counters("sim.engine.")
    assert counters["sim.engine.events_scheduled"] == EVENTS
    assert counters["sim.engine.events_fired"] == EVENTS
    assert counters["sim.engine.events_cancelled"] == 0


def test_null_instrument_calls_are_cheap():
    """A no-op counter inc costs on the order of a method call.

    Sanity check rather than a strict bound: a million no-op incs should
    complete in well under a second on any host.
    """
    from time import perf_counter

    counter = Observability(enabled=False).counter("x")
    start = perf_counter()
    for _ in range(1_000_000):
        counter.inc()
    elapsed = perf_counter() - start
    assert elapsed < 2.0, f"no-op counter unexpectedly slow: {elapsed:.3f}s"
