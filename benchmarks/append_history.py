#!/usr/bin/env python
"""Append benchmark result files to the benchmark trajectory.

``BENCH_exec.json`` / ``BENCH_routing.json`` are point-in-time snapshots
overwritten by every benchmark run; this script folds them into
``benchmarks/history.jsonl`` — one NDJSON line per (git SHA, source
file) — so the performance trajectory across commits survives.  CI's
bench-smoke job appends its fresh measurement and uploads the history as
an artifact; locally, run it after a benchmark refresh::

    python benchmarks/append_history.py BENCH_routing.json

Observability run reports (``--obs-out`` captures, detected by their
``metrics`` + ``spans`` sections) are accepted too: instead of the full
payload, the entry records a latency summary — figure wall clock
(``profile_wall_s`` from a ``--profile`` run), p50/p99 of per-span
exclusive self-times, and p50/p99 of every hdr histogram in the report —
so percentile trajectories across commits survive without archiving
whole span trees.

Appending the same snapshot twice for the same commit is a no-op
(deduplicated on ``(git_sha, source)``), so re-runs never inflate the
history.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
HISTORY_PATH = REPO_ROOT / "benchmarks" / "history.jsonl"

try:
    import repro  # noqa: F401 — probe: installed, or already on PYTHONPATH?
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(REPO_ROOT / "src"))


def git_sha() -> str | None:
    """The commit under measurement: CI's ``GITHUB_SHA``, else HEAD."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        return out or None
    except (OSError, subprocess.CalledProcessError):
        return None


def load_history(path: Path) -> list[dict]:
    """Existing history entries; tolerates a torn trailing line the same
    way the flight recorder and checkpoint store do."""
    if not path.exists():
        return []
    entries: list[dict] = []
    raw_lines = path.read_bytes().splitlines()
    for lineno, raw in enumerate(raw_lines, start=1):
        try:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            entries.append(json.loads(line))
        except (UnicodeDecodeError, ValueError):
            if lineno == len(raw_lines):
                break  # torn tail from an interrupted append
            raise SystemExit(
                f"error: {path}:{lineno}: corrupt history entry"
            )
    return entries


def _self_time_quantiles(spans: dict) -> dict:
    """p50/p99 over per-span exclusive self-times, via an hdr histogram
    so the recorded values use the same bucketing as every other
    percentile in the repo."""
    from repro.obs.prof import flat_profile
    from repro.obs.registry import HdrHistogram

    hist = HdrHistogram("history.span_self_s")
    for row in flat_profile(spans):
        hist.observe(row["self_s"])
    if not hist.count:
        return {}
    return {
        "span_self_s_p50": hist.quantile(0.5),
        "span_self_s_p99": hist.quantile(0.99),
        "spans": hist.count,
    }


def run_report_summary(payload: dict) -> dict:
    """Latency summary of an ``--obs-out`` run report: wall clock, span
    self-time percentiles, and every hdr histogram's p50/p99."""
    from repro.obs.registry import HdrHistogram

    summary: dict = {"command": payload.get("meta", {}).get("command")}
    wall = payload.get("meta", {}).get("profile_wall_s")
    if isinstance(wall, (int, float)):
        summary["wall_s"] = wall
    summary.update(_self_time_quantiles(payload.get("spans", {})))
    quantiles = {}
    hdr = payload.get("metrics", {}).get("hdr_histograms", {})
    for name in sorted(hdr):
        hist = HdrHistogram.from_dict(name, hdr[name])
        if not hist.count:
            continue
        quantiles[name] = {
            "n": hist.count,
            "p50": hist.quantile(0.5),
            "p99": hist.quantile(0.99),
        }
    if quantiles:
        summary["hdr_quantiles"] = quantiles
    return summary


def build_entry(bench_path: Path, sha: str | None) -> dict:
    payload = json.loads(bench_path.read_text(encoding="utf-8"))
    entry = {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "git_sha": sha,
        "source": bench_path.name,
    }
    if isinstance(payload, dict) and "benchmark" in payload:
        entry["benchmark"] = payload["benchmark"]
        entry["payload"] = payload
        return entry
    if isinstance(payload, dict) and "metrics" in payload and "spans" in payload:
        entry["benchmark"] = "obs_report"
        entry["payload"] = run_report_summary(payload)
        return entry
    raise SystemExit(
        f"error: {bench_path} is neither a benchmark result (no "
        "'benchmark' field) nor an observability run report (no "
        "'metrics'/'spans' sections)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "bench_files", nargs="+", type=Path,
        help="benchmark result JSON files (BENCH_*.json)",
    )
    parser.add_argument(
        "--history", type=Path, default=HISTORY_PATH,
        help=f"history file to append to (default: {HISTORY_PATH})",
    )
    args = parser.parse_args(argv)

    sha = git_sha()
    existing = load_history(args.history)
    seen = {(e.get("git_sha"), e.get("source")) for e in existing}

    appended = 0
    args.history.parent.mkdir(parents=True, exist_ok=True)
    with args.history.open("a", encoding="utf-8") as fh:
        for bench_path in args.bench_files:
            if not bench_path.exists():
                raise SystemExit(f"error: no such file: {bench_path}")
            entry = build_entry(bench_path, sha)
            key = (entry["git_sha"], entry["source"])
            if key in seen and entry["git_sha"] is not None:
                print(
                    f"skip {bench_path.name}: already recorded for "
                    f"{entry['git_sha'][:12]}"
                )
                continue
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            seen.add(key)
            appended += 1
            print(f"appended {bench_path.name} ({entry['benchmark']})")
    print(
        f"history: {len(existing) + appended} entries in {args.history}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
