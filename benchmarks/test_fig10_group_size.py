"""Figure 10 — the effect of the group size N_G (paper §4.3.4).

Paper setup: N=100, α=0.2, D_thresh=0.3; N_G ∈ {20, 30, 40, 50}.

Paper claims asserted here:
- performance holds steadily across group sizes (positive improvement,
  bounded overhead at every point);
- the improvement declines slightly as the group grows (more members
  mean everyone already has close neighbors).
"""

from repro.experiments.fig10 import DEFAULT_GROUP_SIZES, run_figure10


def test_figure10_group_size_effect(benchmark, grid):
    topologies, member_sets = grid
    result = benchmark.pedantic(
        lambda: run_figure10(topologies=topologies, member_sets=member_sets),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    rd = [result.point(g).rd_relative.mean for g in DEFAULT_GROUP_SIZES]
    delay = [result.point(g).delay_relative.mean for g in DEFAULT_GROUP_SIZES]

    # Steady positive improvement at every group size.
    assert all(r > 0.08 for r in rd)
    # Bounded overheads everywhere.
    assert all(0.0 <= d <= 0.3 + 1e-9 for d in delay)
    # Slight decline with group size: the largest group does not beat the
    # smallest.
    assert rd[-1] <= rd[0] + 0.03
    # The band is narrow — "maintained steadily" (no collapse anywhere).
    assert max(rd) - min(rd) < 0.15
