"""Ablation — protocol overhead: eager vs. deferred SHR maintenance
(paper §3.3.2) and the control-message economy of the DES protocol.

The paper's enhancement: "each node initiates the re-calculation of its
SHR only when a query message from a certain new member is received",
amortizing maintenance into joins.  The graph engine's message accounting
lets us compare both policies on identical workloads; the DES run then
validates that steady-state control traffic is linear in the tree size.
"""

import numpy as np

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.sim.protocols import SmrpSimulation


def build_workload(seed: int = 0, n: int = 100, group: int = 30):
    topology = waxman_topology(
        WaxmanConfig(n=n, alpha=0.2, beta=0.25, seed=seed)
    ).topology
    rng = np.random.default_rng(seed + 1)
    members = [int(m) for m in rng.choice(range(1, n), group, replace=False)]
    return topology, members


def run_mode(state_mode: str):
    topology, members = build_workload()
    proto = SMRPProtocol(
        topology,
        0,
        config=SMRPConfig(state_mode=state_mode, self_check=False),
    )
    proto.build(members)
    # Half the group churns out again (leaves stress N-update traffic).
    for member in members[::2]:
        proto.leave(member)
    return proto.state.counters


def test_eager_vs_deferred_maintenance(benchmark):
    deferred = benchmark.pedantic(
        lambda: run_mode("deferred"), rounds=1, iterations=1
    )
    eager = run_mode("eager")
    print(
        f"\neager:    N-updates {eager.n_updates}, pushes {eager.shr_pushes}, "
        f"pulls {eager.shr_pulls}, total {eager.total}"
        f"\ndeferred: N-updates {deferred.n_updates}, pushes {deferred.shr_pushes}, "
        f"pulls {deferred.shr_pulls}, total {deferred.total}"
    )
    # Same N-update traffic (both walk the join/leave paths)…
    assert deferred.n_updates == eager.n_updates
    # …but the deferred mode replaces tree-wide pushes with on-demand
    # pulls and comes out cheaper on this workload.
    assert deferred.shr_pushes == 0
    assert eager.shr_pushes > 0
    assert deferred.total < eager.total


def test_des_steady_state_traffic_linear(benchmark):
    """In steady state the DES protocol sends only refreshes and adverts:
    at most (1 refresh + 1 advert per child) per node per period."""

    def run():
        topology, members = build_workload(seed=2, n=40, group=8)
        sim = SmrpSimulation(topology, 0, d_thresh=0.3)
        spacing = 50.0 * max(l.delay for l in topology.links())
        for i, m in enumerate(members):
            sim.schedule_join(spacing * (i + 1), m)
        settle = spacing * (len(members) + 2)
        sim.run(until=settle)
        sent_before = sim.network.stats.sent
        window = 20.0 * sim.timers.advert_period
        sim.run(until=settle + window)
        per_period = (sim.network.stats.sent - sent_before) / 20.0
        on_tree = len(sim.extract_tree().on_tree_nodes())
        return per_period, on_tree

    per_period, on_tree = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nsteady state: {per_period:.1f} msgs/period over {on_tree} on-tree nodes")
    assert per_period <= 2.0 * on_tree
    assert per_period > 0
