"""The headline claim, measured message-by-message in simulated time.

§1 of the paper: "faster service restoration could be achieved by quickly
identifying a local detour instead of waiting a long time for routing
re-stabilization", with [25] reporting that PIM recovery is dominated by
the underlying OSPF re-convergence.

This bench runs the *same* worst-case failure scenario through both
message-level implementations:

- :class:`~repro.sim.protocols.SmrpSimulation` — detection, then a local
  detour graft;
- :class:`~repro.sim.rejoin.SpfRejoinSimulation` — detection, then LSA
  flooding, scheduled SPF recomputations, and table-routed re-joins that
  keep dying until the tables converge;

and compares the measured post-detection restoration latencies (failure
detection is mechanically identical in both, so this isolates exactly
what the paper argues about).
"""

import numpy as np

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.sim.failures import FailureSchedule
from repro.sim.protocols import SmrpSimulation
from repro.sim.rejoin import SpfRejoinSimulation


def run_one(seed: int):
    topology = waxman_topology(
        WaxmanConfig(n=60, alpha=0.4, beta=0.3, seed=seed)
    ).topology
    rng = np.random.default_rng(seed + 500)
    members = [int(m) for m in rng.choice(range(1, 60), 6, replace=False)]
    latencies = {}
    for name, sim_cls, kwargs in (
        ("global", SpfRejoinSimulation, {}),
        ("local", SmrpSimulation, {"d_thresh": 0.3}),
    ):
        sim = sim_cls(topology, 0, **kwargs)
        spacing = 50.0 * max(l.delay for l in topology.links())
        for i, m in enumerate(members):
            sim.schedule_join(spacing * (i + 1), m)
        settle = spacing * (len(members) + 2)
        sim.run(until=settle)
        tree = sim.extract_tree()
        victim = members[0]
        path = tree.path_from_source(victim)
        FailureSchedule().fail_link_at(settle + 1.0, path[0], path[1]).arm(
            sim.sim, sim.network
        )
        sim.run(until=settle + 150 * spacing)
        restored = [
            r.post_detection_latency
            for r in sim.recovery_records
            if r.restored_at is not None
        ]
        latencies[name] = min(restored) if restored else None
    return latencies


def run_many(seeds=range(10)):
    local, global_ = [], []
    for seed in seeds:
        result = run_one(seed)
        if result["local"] is None or result["global"] is None:
            continue
        local.append(result["local"])
        global_.append(result["global"])
    return local, global_


def test_local_detour_restores_faster(benchmark):
    local, global_ = benchmark.pedantic(run_many, rounds=1, iterations=1)
    assert len(local) >= 5, "too few recoverable scenarios"
    mean_local = sum(local) / len(local)
    mean_global = sum(global_) / len(global_)
    wins = sum(1 for a, b in zip(local, global_) if a < b)
    print(
        f"\npost-detection restoration latency over {len(local)} scenarios:"
        f"\n  local detour (SMRP):        {mean_local:8.1f}"
        f"\n  global detour (PIM/OSPF):   {mean_global:8.1f}"
        f"\n  speedup: {mean_global / mean_local:.1f}x  "
        f"(local faster in {wins}/{len(local)} scenarios)"
    )
    # The paper's headline: on average, local recovery does not pay the
    # re-convergence wait.  (The global detour occasionally matches it —
    # when the failed link happens to sit on no router's unicast route,
    # re-joining needs no re-convergence at all — so the claim is about
    # the mean and the majority, not every single draw.)
    assert mean_local < mean_global
    assert wins * 2 >= len(local)
