"""Figure 8 — the effect of D_thresh (paper §4.3.2).

Paper setup: N=100, N_G=30, α=0.2; D_thresh ∈ {0.1, 0.2, 0.3, 0.4};
100 scenarios per point with 95% confidence intervals.

Paper claims asserted here:
- the recovery-distance improvement *grows* with D_thresh (≈linearly);
- so do the delay and cost penalties (the controlled trade-off);
- at D_thresh = 0.3 the improvement is substantial (paper ≈20%) while
  the delay penalty stays moderate (paper ≈5%).
"""

from repro.experiments.fig8 import DEFAULT_DTHRESH_VALUES, run_figure8


def test_figure8_dthresh_tradeoff(benchmark, grid):
    topologies, member_sets = grid
    result = benchmark.pedantic(
        lambda: run_figure8(topologies=topologies, member_sets=member_sets),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    rd = [result.point(d).rd_relative.mean for d in DEFAULT_DTHRESH_VALUES]
    delay = [result.point(d).delay_relative.mean for d in DEFAULT_DTHRESH_VALUES]
    cost = [result.point(d).cost_relative.mean for d in DEFAULT_DTHRESH_VALUES]

    # Improvement grows with D_thresh end to end (monotone up to noise:
    # compare the extremes, and require no large inversion in between).
    assert rd[-1] > rd[0]
    for a, b in zip(rd, rd[1:]):
        assert b > a - 0.05, f"RD trend inverted: {rd}"

    # Penalties grow with D_thresh too (the paper's trade-off direction).
    assert delay[-1] > delay[0]
    assert cost[-1] > cost[0]

    # Headline point: meaningful improvement, bounded penalties.
    headline = result.point(0.3)
    assert headline.rd_relative.mean > 0.10
    assert 0.0 <= headline.delay_relative.mean < 0.15
    assert 0.0 <= headline.cost_relative.mean < 0.35

    # Delay penalty can never exceed what the bound allows.
    for d in DEFAULT_DTHRESH_VALUES:
        assert result.point(d).delay_relative.mean <= d + 1e-9
