"""Ablation — query scheme vs. full topology knowledge (paper §3.3.1).

The paper concedes that the neighbor-relay query scheme "does not
guarantee to obtain SHR for all on-tree nodes and the selected multicast
path may not be optimal, thus degrading the protocol performance".  This
bench quantifies that degradation: the query-scheme protocol must stay in
the same qualitative regime (shorter recovery than the SPF baseline) while
giving up some of the full-knowledge gain.
"""

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig


def run_mode(knowledge: str, scenarios: int = 12):
    rd, delay, cost = [], [], []
    for t in range(scenarios):
        result = run_scenario(
            ScenarioConfig(
                knowledge=knowledge, topology_seed=t, member_seed=900 + t
            )
        )
        rd.extend(result.rd_relative)
        delay.extend(result.delay_relative)
        cost.append(result.cost_relative)
    mean = lambda xs: sum(xs) / len(xs)
    return mean(rd), mean(delay), mean(cost)


def test_query_scheme_degrades_gracefully(benchmark):
    query = benchmark.pedantic(
        lambda: run_mode("query"), rounds=1, iterations=1
    )
    full = run_mode("full")
    print(
        f"\nfull knowledge: RD {100 * full[0]:+.1f}% delay {100 * full[1]:+.1f}% "
        f"cost {100 * full[2]:+.1f}%"
        f"\nquery scheme:   RD {100 * query[0]:+.1f}% delay {100 * query[1]:+.1f}% "
        f"cost {100 * query[2]:+.1f}%"
    )
    # Both modes beat the SPF baseline on recovery distance.
    assert full[0] > 0.1
    assert query[0] > 0.05
    # The query scheme is the cheaper-but-weaker point: it cannot beat
    # full knowledge by any real margin on recovery distance…
    assert query[0] <= full[0] + 0.05
    # …and it spends less on delay/cost overheads (fewer aggressive
    # detours are even discoverable).
    assert query[1] <= full[1] + 0.02
    assert query[2] <= full[2] + 0.02
