"""Extension — sequential persistent failures and repeated repair.

The paper evaluates a single worst-case failure per member.  Persistent
failures accumulate in practice (each "usually lasts for hours", §1), so
a survivable protocol must keep working on an already-degraded network.
This bench injects a *sequence* of failures — each time cutting the
current tree's most-loaded link — repairs after every hit, and tracks:

- service continuity (members still fed after each round),
- cumulative restoration effort (new links brought in),
- whether SMRP's repaired trees keep beating the SPF baseline's.
"""

import numpy as np

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.recovery import repair_tree
from repro.core.shr import link_utilisation
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.multicast.validation import check_tree_invariants
from repro.routing.failure_view import NO_FAILURES, FailureSet
from repro.routing.route_cache import RouteCache


def run_sequence(seed: int, rounds: int = 4):
    topology = waxman_topology(
        WaxmanConfig(n=100, alpha=0.25, beta=0.25, seed=seed)
    ).topology
    rng = np.random.default_rng(seed + 600)
    members = [int(m) for m in rng.choice(range(1, 100), 25, replace=False)]

    outcomes = {}
    for name, tree, strategy in (
        (
            "smrp",
            SMRPProtocol(topology, 0, config=SMRPConfig(self_check=False)).build(
                members
            ),
            "local",
        ),
        (
            "spf",
            SPFMulticastProtocol(topology, 0, self_check=False).build(members),
            "global",
        ),
    ):
        failures = NO_FAILURES
        served_history = []
        total_effort = 0.0
        # Failure-aware route cache: rounds repeat (member, failure-set)
        # SPF lookups whenever a later cut leaves a member's scenario
        # untouched, and reuse proofs skip the kernel outright.
        route_cache = RouteCache()
        for _ in range(rounds):
            utilisation = link_utilisation(tree)
            if not utilisation:
                break
            # Cut the most-loaded live link (ties by key): the failure
            # that hurts the most members at once.
            target = max(sorted(utilisation), key=lambda e: utilisation[e])
            failures = failures.union(FailureSet.links(target))
            report = repair_tree(
                topology, tree, failures, strategy=strategy, route_cache=route_cache
            )
            tree = report.repaired_tree
            check_tree_invariants(tree)
            total_effort += report.total_recovery_distance
            served_history.append(len(tree.members))
        outcomes[name] = {
            "served": served_history,
            "effort": total_effort,
            "final_members": len(tree.members),
        }
    return len(members), outcomes


def test_sequential_failures(benchmark):
    group_size, outcomes = benchmark.pedantic(
        lambda: run_sequence(seed=2), rounds=1, iterations=1
    )
    smrp, spf = outcomes["smrp"], outcomes["spf"]
    print(
        f"\nserved members per round (of {group_size}):"
        f"\n  SMRP: {smrp['served']}  repair effort {smrp['effort']:.0f}"
        f"\n  SPF:  {spf['served']}  repair effort {spf['effort']:.0f}"
    )
    # Service continuity: neither protocol loses a large fraction of the
    # group to four sequential worst-link failures.
    assert smrp["final_members"] >= group_size * 0.8
    # SMRP's spread trees localize each hit: per-round service never dips
    # below SPF's by more than the odd bridge member.
    for a, b in zip(smrp["served"], spf["served"]):
        assert a >= b - 2
    # And the cumulative repair effort stays no worse than the baseline's
    # within a modest factor (its detours are short by construction).
    assert smrp["effort"] <= spf["effort"] * 1.5


def test_many_seeds_stability(benchmark):
    """Across several topologies, SMRP's post-repair service never falls
    below the baseline's.

    (When the cut link is a bridge isolating the source itself — a
    topology artifact, not a protocol property — *no* scheme can serve
    anyone; such seeds are reported but only compared relatively.)
    """

    def run():
        rows = []
        for seed in range(5):
            group_size, outcomes = run_sequence(seed=seed, rounds=3)
            rows.append(
                (
                    outcomes["smrp"]["final_members"] / group_size,
                    outcomes["spf"]["final_members"] / group_size,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\nfinal served fraction per seed (SMRP vs SPF): "
        + ", ".join(f"{a:.2f}/{b:.2f}" for a, b in rows)
    )
    for smrp_frac, spf_frac in rows:
        assert smrp_frac >= spf_frac - 0.1
    survivable = [a for a, b in rows if b > 0]
    assert survivable and min(survivable) > 0.7
