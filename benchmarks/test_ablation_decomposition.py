"""Ablation — decomposing SMRP's win: tree shape vs. recovery mechanism.

SMRP changes two things at once relative to the deployed baseline: the
*tree* (less sharing) and the *recovery rule* (local detour instead of
post-re-convergence re-join).  The runner records all four combinations;
this bench separates their contributions:

- local detour on the *SPF* tree already beats the global detour
  (mechanism contribution);
- the *SMRP* tree pushes the local detour further (tree contribution) —
  the disjoint-paths effect of Figure 2.
"""

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig


def run(scenarios: int = 12):
    spf_global, spf_local, smrp_local = [], [], []
    for t in range(scenarios):
        result = run_scenario(
            ScenarioConfig(topology_seed=t, member_seed=700 + t)
        )
        for m in result.measurements:
            if None in (m.rd_spf_global, m.rd_spf_local, m.rd_smrp_local):
                continue
            spf_global.append(m.rd_spf_global)
            spf_local.append(m.rd_spf_local)
            smrp_local.append(m.rd_smrp_local)
    return spf_global, spf_local, smrp_local


def test_decompose_tree_vs_mechanism(benchmark):
    spf_global, spf_local, smrp_local = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert len(spf_global) > 100
    mean = lambda xs: sum(xs) / len(xs)
    m_global, m_spf_local, m_smrp_local = (
        mean(spf_global),
        mean(spf_local),
        mean(smrp_local),
    )
    print(
        f"\nmean RD — global on SPF tree: {m_global:.2f}, "
        f"local on SPF tree: {m_spf_local:.2f}, "
        f"local on SMRP tree: {m_smrp_local:.2f}"
    )
    # Mechanism contribution: the local rule helps even on the SPF tree
    # (per-member it can never lose on the same tree; on average it wins).
    assert m_spf_local < m_global
    # Tree contribution: the survivable tree helps the local rule further.
    assert m_smrp_local < m_spf_local
