"""Extension — service disruption measured in lost data packets.

The paper motivates SMRP with QoS applications that "usually cannot
tolerate a large service restoration latency in the face of significant
packet losses" (§3.1).  With the simulated data plane we can measure the
disruption in the unit users feel: multicast packets that never arrived.

Same worst-case failure, two full protocol stacks, counting each
disconnected member's largest delivery gap.
"""

import numpy as np

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.sim.failures import FailureSchedule
from repro.sim.protocols import SmrpSimulation
from repro.sim.rejoin import SpfRejoinSimulation


def run_one(seed: int):
    topology = waxman_topology(
        WaxmanConfig(n=50, alpha=0.4, beta=0.3, seed=seed)
    ).topology
    rng = np.random.default_rng(seed + 700)
    members = [int(m) for m in rng.choice(range(1, 50), 5, replace=False)]
    losses = {}
    for name, sim_cls, kwargs in (
        ("local", SmrpSimulation, {"d_thresh": 0.3}),
        ("global", SpfRejoinSimulation, {}),
    ):
        sim = sim_cls(topology, 0, **kwargs)
        spacing = 40.0 * max(l.delay for l in topology.links())
        for i, m in enumerate(members):
            sim.schedule_join(spacing * (i + 1), m)
        data_period = sim.timers.advert_period / 4.0
        sim.start_data(period=data_period)
        settle = spacing * (len(members) + 2)
        sim.run(until=settle)
        tree = sim.extract_tree()
        victim = members[0]
        path = tree.path_from_source(victim)
        FailureSchedule().fail_link_at(settle + 1.0, path[0], path[1]).arm(
            sim.sim, sim.network
        )
        sim.run(until=settle + 120 * spacing)
        missing, _ = sim.disruption(victim)
        # Normalize to time units so different runs are comparable.
        losses[name] = missing * data_period if missing > 0 else None
    return losses


def run_many(seeds=range(8)):
    local, global_ = [], []
    for seed in seeds:
        result = run_one(seed)
        if result["local"] is None or result["global"] is None:
            continue
        local.append(result["local"])
        global_.append(result["global"])
    return local, global_


def test_fewer_packets_lost_with_local_detours(benchmark):
    local, global_ = benchmark.pedantic(run_many, rounds=1, iterations=1)
    assert len(local) >= 4, "too few scenarios with measurable outages"
    mean_local = sum(local) / len(local)
    mean_global = sum(global_) / len(global_)
    wins = sum(1 for a, b in zip(local, global_) if a <= b)
    print(
        f"\noutage (lost-packet time) over {len(local)} scenarios:"
        f"\n  local detour:  {mean_local:8.1f}"
        f"\n  global detour: {mean_global:8.1f}"
        f"\n  local no worse in {wins}/{len(local)} scenarios"
    )
    assert mean_local <= mean_global
    assert wins * 2 >= len(local)
