"""Figure 9 — the effect of the average node degree / α (paper §4.3.3).

Paper setup: N=100, N_G=30, D_thresh=0.3; α ∈ {0.15, 0.2, 0.25, 0.3};
the realised average node degree is reported under each α.

Paper claims asserted here:
- the realised degree grows with α (the knob works);
- SMRP's improvement diminishes as connectivity grows, but an acceptable
  improvement persists even on the densest setting (paper: ≈12% at
  average degree 10).
"""

from repro.experiments.fig9 import DEFAULT_ALPHA_VALUES, run_figure9


def test_figure9_degree_effect(benchmark, grid):
    topologies, member_sets = grid
    result = benchmark.pedantic(
        lambda: run_figure9(topologies=topologies, member_sets=member_sets),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    degrees = [result.point(a).average_degree for a in DEFAULT_ALPHA_VALUES]
    rd = [result.point(a).rd_relative.mean for a in DEFAULT_ALPHA_VALUES]
    delay = [result.point(a).delay_relative.mean for a in DEFAULT_ALPHA_VALUES]

    # The α knob controls the degree, monotonically.
    assert degrees == sorted(degrees)
    assert degrees[-1] > degrees[0] + 1.0

    # Improvement stays substantial at every connectivity level —
    # including the densest (the paper's ≈12%-at-degree-10 follow-up).
    assert all(r > 0.08 for r in rd)
    # The improvement varies only mildly across the α range (no
    # collapse at either end).  NOTE: the *direction* of the mild trend
    # does not reproduce — the paper reports a slight decline with
    # density, we measure a slight rise (denser graphs offer the local
    # detour more disjoint options under our β/delay model); see
    # EXPERIMENTS.md for the discussion.
    assert max(rd) - min(rd) < 0.15

    # Delay penalty remains bounded by the D_thresh budget at every α.
    assert all(0.0 <= d <= 0.3 + 1e-9 for d in delay)


def test_figure9_high_degree_extension(benchmark):
    """The paper's follow-up: at average degree ≈10 the reduction is
    still ≈12%.  Reproduced with a dense α and the degree-calibration
    helper's neighborhood."""
    from repro.experiments.scenario import ScenarioConfig
    from repro.experiments.sweeps import run_sweep

    def run():
        return run_sweep(
            lambda a: ScenarioConfig(alpha=a, beta=0.5),  # denser β regime
            values=[0.25],
            topologies=4,
            member_sets=2,
        )[0]

    point = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nhigh-degree point: avg degree {point.average_degree:.1f}, "
        f"RD_relative {100 * point.rd_relative.mean:+.1f}% "
        f"(paper: ≈+12% at degree 10)"
    )
    assert point.average_degree > 8.0
    assert point.rd_relative.mean > 0.05
