"""Extension — proactive protection vs. SMRP's reactive local recovery.

The paper positions SMRP between today's reactive SPF re-join (slow, no
standing cost) and proactive protection à la Han & Shin [22] / Medard et
al. [16] (instant, permanent resource reservation).  This bench measures
all three points of the spectrum under the worst-case failure model:

- recovery distance: protection = 0 by construction, SMRP short, SPF long;
- standing resource cost: protection reserves far more than either tree.
"""

import numpy as np

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.metrics.recovery_metrics import worst_case_recovery
from repro.multicast.protection import ProtectedMulticast
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.routing.failure_view import FailureSet


def run(scenarios: int = 8):
    rows = []
    for seed in range(scenarios):
        topology = waxman_topology(
            WaxmanConfig(n=100, alpha=0.2, beta=0.25, seed=seed)
        ).topology
        rng = np.random.default_rng(400 + seed)
        members = [int(m) for m in rng.choice(range(1, 100), 30, replace=False)]

        smrp = SMRPProtocol(topology, 0, config=SMRPConfig(self_check=False))
        smrp.build(members)
        spf = SPFMulticastProtocol(topology, 0, self_check=False)
        spf.build(members)
        protection = ProtectedMulticast(topology, 0).build(members)
        pstats = protection.stats()

        rd_smrp, rd_spf, survived = [], [], 0
        protected = 0
        for member in members:
            m_smrp = worst_case_recovery(topology, smrp.tree, member, "local")
            m_spf = worst_case_recovery(topology, spf.tree, member, "global")
            if m_smrp.recovered:
                rd_smrp.append(m_smrp.recovery_distance)
            if m_spf.recovered:
                rd_spf.append(m_spf.recovery_distance)
            state = protection.members[member]
            if state.is_protected:
                protected += 1
                first_link = state.primary[:2]
                if state.active_path(FailureSet.links(first_link)) == state.backup:
                    survived += 1
        rows.append(
            {
                "rd_smrp": float(np.mean(rd_smrp)),
                "rd_spf": float(np.mean(rd_spf)),
                "cost_smrp": smrp.tree.tree_cost(),
                "cost_spf": spf.tree.tree_cost(),
                "cost_protection": pstats.reserved_cost,
                "protected": protected,
                "survived": survived,
                "members": len(members),
            }
        )
    return rows


def test_protection_spectrum(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    mean = lambda key: sum(r[key] for r in rows) / len(rows)
    print(
        f"\n             standing cost    worst-case RD"
        f"\nSPF + rejoin   {mean('cost_spf'):10.0f}    {mean('rd_spf'):10.1f}"
        f"\nSMRP           {mean('cost_smrp'):10.0f}    {mean('rd_smrp'):10.1f}"
        f"\nprotection     {mean('cost_protection'):10.0f}    {0.0:10.1f} (switchover)"
    )
    protected = sum(r["protected"] for r in rows)
    survived = sum(r["survived"] for r in rows)
    # Protection delivers its promise: every protected member survives a
    # primary-path failure with zero recovery distance.
    assert survived == protected
    assert protected > 0
    # The spectrum ordering the paper sketches:
    # recovery speed: protection (0) < SMRP < SPF rejoin,
    assert 0.0 < mean("rd_smrp") < mean("rd_spf")
    # standing cost: SPF tree < SMRP tree < full protection reservation.
    assert mean("cost_spf") < mean("cost_smrp") < mean("cost_protection")
