"""Microbenchmark for the compiled routing substrate (PR: CSR kernels).

Times the dict-based reference Dijkstra (the pre-CSR implementation,
retained in ``repro.routing.spf_reference``) against the CSR kernels
behind the public API, exercises the failure-aware route cache over a
worst-case-failure workload to record its hit/reuse/miss split, and wraps
up with the end-to-end ``figures --quick`` wall clock.

Standalone by design (no pytest): run it directly.

    PYTHONPATH=src python benchmarks/bench_routing.py --quick

Writes ``BENCH_routing.json`` (see ``--out``); CI's ``bench-smoke`` job
runs the ``--quick`` variant and uploads the artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from datetime import date
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.protocol import SMRPConfig, SMRPProtocol  # noqa: E402
from repro.core.shr import adjusted_shr_table, shr_table  # noqa: E402
from repro.graph.waxman import WaxmanConfig, waxman_topology  # noqa: E402
from repro.metrics.recovery_metrics import worst_case_recovery  # noqa: E402
from repro.multicast.spf_protocol import SPFMulticastProtocol  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.routing.batch import dijkstra_multi  # noqa: E402
from repro.routing.route_cache import RouteCache  # noqa: E402
from repro.routing.spf import dijkstra, dijkstra_with_barriers  # noqa: E402
from repro.routing.spf_reference import (  # noqa: E402
    dijkstra_reference,
    dijkstra_with_barriers_reference,
)


def bench(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()``, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def make_workload(n: int, topologies: int):
    """(topology, sources, barrier set) triples over a Waxman ensemble."""
    workload = []
    for seed in range(topologies):
        topo = waxman_topology(
            WaxmanConfig(n=n, alpha=0.5, beta=0.4, seed=seed)
        ).topology
        nodes = topo.nodes()
        sources = nodes[:: max(1, len(nodes) // 8)]
        barriers = {node for node in nodes if node % 3 == 0}
        workload.append((topo, sources, barriers))
    return workload


def bench_kernels(n: int, topologies: int, repeats: int) -> dict:
    workload = make_workload(n, topologies)

    def run_reference():
        for topo, sources, _ in workload:
            for s in sources:
                dijkstra_reference(topo, s)

    def run_csr():
        for topo, sources, _ in workload:
            for s in sources:
                dijkstra(topo, s)

    def run_reference_barriers():
        for topo, sources, barriers in workload:
            for s in sources:
                dijkstra_with_barriers_reference(topo, s, barriers=barriers)

    def run_csr_barriers():
        for topo, sources, barriers in workload:
            for s in sources:
                dijkstra_with_barriers(topo, s, barriers=barriers)

    # Warm the topology-level CSR/adjacency caches so both sides time the
    # search itself, not one-off compilation.
    run_csr()
    run_reference()
    searches = sum(len(sources) for _, sources, _ in workload)
    ref = bench(run_reference, repeats)
    csr = bench(run_csr, repeats)
    ref_b = bench(run_reference_barriers, repeats)
    csr_b = bench(run_csr_barriers, repeats)
    return {
        "workload": {"n": n, "topologies": topologies, "searches": searches},
        "dijkstra": {
            "reference_s": round(ref, 4),
            "csr_s": round(csr, 4),
            "speedup": round(ref / csr, 2),
        },
        "dijkstra_with_barriers": {
            "reference_s": round(ref_b, 4),
            "csr_s": round(csr_b, 4),
            "speedup": round(ref_b / csr_b, 2),
        },
    }


def bench_failure_cache(n: int, topologies: int) -> dict:
    """The §4.3.1 worst-case-failure sweep through the failure-aware cache.

    Every member is measured under all four strategy/tree pairings — the
    experiment runner's exact access pattern — once with the cache and
    once without, so the counter split shows where the savings come from.
    """
    obs = Observability()
    cache = RouteCache()
    scenarios = 0
    uncached_s = 0.0
    cached_s = 0.0
    for seed in range(topologies):
        topo = waxman_topology(
            WaxmanConfig(n=n, alpha=0.5, beta=0.4, seed=seed)
        ).topology
        members = topo.nodes()[1 :: max(1, n // 12)]
        spf_tree = SPFMulticastProtocol(topo, 0, self_check=False).build(members)
        smrp = SMRPProtocol(topo, 0, config=SMRPConfig(self_check=False))
        smrp_tree = smrp.build(members)
        for member in members:
            for tree in (spf_tree, smrp_tree):
                for strategy in ("local", "global"):
                    scenarios += 1
                    start = time.perf_counter()
                    worst_case_recovery(topo, tree, member, strategy)
                    uncached_s += time.perf_counter() - start
                    start = time.perf_counter()
                    worst_case_recovery(
                        topo, tree, member, strategy,
                        route_cache=cache, route_obs=obs,
                    )
                    cached_s += time.perf_counter() - start
    counters = obs.metrics.snapshot()["counters"]
    return {
        "workload": {
            "n": n,
            "topologies": topologies,
            "recovery_measurements": scenarios,
        },
        "uncached_s": round(uncached_s, 4),
        "cached_s": round(cached_s, 4),
        "speedup": round(uncached_s / cached_s, 2) if cached_s else None,
        "counters": {
            "hits": counters.get("cache.routes.hits", 0),
            "misses": counters.get("cache.routes.misses", 0),
            "reuse_proofs": counters.get("cache.routes.reuse_proofs", 0),
        },
        "stats": cache.stats,
    }


def bench_batch(quick: bool) -> dict:
    """Batch kernels vs their looped/dict counterparts (PR: batch routing).

    Multi-root SPF: one :func:`dijkstra_multi` call for every sampled
    root vs one :func:`dijkstra` call per root, on sparse Waxman graphs
    at controller scale.  SHR: the vectorized array tables vs the
    dict/incremental reference on trees above the auto-dispatch gate.
    Both sides produce bit-identical results (property-tested), so this
    is a pure kernel-scheduling comparison.
    """
    sizes = [100, 300] if quick else [100, 300, 1000]
    repeats = 3
    multi_root = []
    for n in sizes:
        topo = waxman_topology(
            WaxmanConfig(n=n, alpha=0.2, beta=0.25, seed=0)
        ).topology
        roots = topo.nodes()[:: max(1, n // 64)]
        dijkstra(topo, roots[0])  # warm the CSR compile
        dijkstra_multi(topo, roots[:1])  # warm the batch plan

        def run_looped():
            for root in roots:
                dijkstra(topo, root)

        def run_batched():
            dijkstra_multi(topo, roots)

        looped = bench(run_looped, repeats)
        batched = bench(run_batched, repeats)
        multi_root.append(
            {
                "n": n,
                "roots": len(roots),
                "looped_s": round(looped, 4),
                "batched_s": round(batched, 4),
                "speedup": round(looped / batched, 2),
            }
        )

    shr = []
    shr_cases = [(300, 150), (1000, 400)] if not quick else [(300, 150)]
    for n, k in shr_cases:
        topo = waxman_topology(
            WaxmanConfig(n=n, alpha=0.2, beta=0.25, seed=0)
        ).topology
        members = topo.nodes()[1 :: max(1, n // k)]
        tree = SPFMulticastProtocol(topo, 0, self_check=False).build(members)
        mover = sorted(tree.members)[1]
        table_d = bench(lambda: shr_table(tree, vectorized=False), repeats)
        table_v = bench(lambda: shr_table(tree, vectorized=True), repeats)
        adj_d = bench(
            lambda: adjusted_shr_table(tree, mover, vectorized=False), repeats
        )
        adj_v = bench(
            lambda: adjusted_shr_table(tree, mover, vectorized=True), repeats
        )
        shr.append(
            {
                "n": n,
                "tree_nodes": len(tree.on_tree_nodes()),
                "shr_table": {
                    "dict_s": round(table_d, 5),
                    "vectorized_s": round(table_v, 5),
                    "speedup": round(table_d / table_v, 2),
                },
                "adjusted_shr_table": {
                    "dict_s": round(adj_d, 5),
                    "vectorized_s": round(adj_v, 5),
                    "speedup": round(adj_d / adj_v, 2),
                },
            }
        )
    return {"multi_root_spf": multi_root, "shr_vectorized": shr}


def bench_figures_quick(repeats: int) -> dict:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    runs = []
    for _ in range(repeats):
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro", "figures", "--quick",
             "--executor", "serial"],
            check=True,
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
        )
        runs.append(round(time.perf_counter() - start, 2))
    return {
        "command": "python -m repro figures --quick --executor serial",
        "runs_s": runs,
        "best_s": min(runs),
        "pre_csr_baseline_s": 15.39,  # BENCH_exec.json serial best
        "speedup_vs_baseline": round(15.39 / min(runs), 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller ensemble, single figures run (CI smoke setting)",
    )
    parser.add_argument(
        "--skip-figures",
        action="store_true",
        help="kernel and cache sections only",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_routing.json",
        help="output path (default: BENCH_routing.json at the repo root)",
    )
    args = parser.parse_args()

    if args.quick:
        n, topologies, repeats, fig_repeats = 40, 3, 3, 1
    else:
        n, topologies, repeats, fig_repeats = 80, 5, 5, 2

    # The end-to-end figures run is timed *first*: on burst-quota cgroups
    # the sustained micro-bench load above would otherwise exhaust the CPU
    # budget and inflate the subprocess wall clock by ~40%.
    figures = None if args.skip_figures else bench_figures_quick(fig_repeats)
    report = {
        "benchmark": "routing substrate (CSR kernels + failure-aware cache)",
        "command": "python benchmarks/bench_routing.py"
        + (" --quick" if args.quick else ""),
        "date": date.today().isoformat(),
        "kernels": bench_kernels(n, topologies, repeats),
        "batch": bench_batch(args.quick),
        "failure_cache": bench_failure_cache(n, topologies),
    }
    if figures is not None:
        report["figures_quick"] = figures

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
