"""Extension — the N-level generalization of §3.3.3.

The paper: the 2-level architecture "can be easily generalized into an
N-level architecture" and failures are confined to the recovery domain
they occur in.  This bench builds a 3-level hierarchy and verifies:

- cross-branch traffic meets at the lowest common ancestor domain (data
  never climbs higher than necessary),
- a leaf-domain failure reconfigures exactly that leaf domain — the
  scope *shrinks* as depth grows, because domains get smaller,
- a mid-level failure spares every leaf domain's tree.
"""

import numpy as np

from repro.graph.nlevel import LevelSpec, n_level_topology
from repro.core.nlevel import NLevelMulticast
from repro.core.protocol import SMRPConfig
from repro.routing.failure_view import FailureSet
from repro.routing.route_cache import RouteCache


def build_session(seed: int = 7):
    network = n_level_topology(
        [
            LevelSpec(size=4, fanout=3, alpha=0.9, scale=150.0),
            LevelSpec(size=5, fanout=3, alpha=0.8, scale=60.0),
            LevelSpec(size=7, fanout=0, alpha=0.7, scale=25.0),
        ],
        seed=seed,
    )
    leaves = network.leaf_domains()
    rng = np.random.default_rng(seed + 1)
    source_leaf = leaves[0]
    source = min(n for n in source_leaf.nodes if n != source_leaf.gateway)
    session = NLevelMulticast(network, source, config=SMRPConfig(d_thresh=0.5))
    members = []
    for leaf in leaves[1:]:
        candidates = sorted(n for n in leaf.nodes if n != leaf.gateway)
        member = int(candidates[int(rng.integers(len(candidates)))])
        session.join(member)
        members.append(member)
    return network, session, members


def test_nlevel_confinement(benchmark):
    network, session, members = benchmark.pedantic(
        build_session, rounds=1, iterations=1
    )
    total = network.topology.num_nodes
    print(
        f"\n3-level hierarchy: {total} nodes, "
        f"{len(network.domains)} domains, "
        f"{len(session.active_domains())} active"
    )

    # 1. LCA routing: a sibling-leaf member's chain avoids the root.
    sibling_leaf = network.leaf_domains()[1]
    sibling_member = next(
        m for m in members if network.domain_of[m] == sibling_leaf.domain_id
    )
    lca = network.lowest_common_ancestor(
        session.source_domain_id, sibling_leaf.domain_id
    )
    assert network.domains[lca].level == 1  # meets at the mid level
    assert session.end_to_end_delay(sibling_member) > 0

    # 2. Leaf failure confined to one (small) leaf domain.
    victim = members[-1]
    leaf_id = network.domain_of[victim]
    tree = session.protocol(leaf_id).tree
    path = tree.path_from_source(victim)
    route_cache = RouteCache()
    report = session.recover(
        FailureSet.links((path[0], path[1])), route_cache=route_cache
    )
    assert set(report.domains_reconfigured) <= {leaf_id}
    if report.domains_reconfigured:
        leaf_size = len(network.domains[leaf_id].nodes)
        print(
            f"leaf failure scope: {report.scope_nodes}/{total} nodes "
            f"(domain size {leaf_size})"
        )
        assert report.scope_nodes <= leaf_size + 3  # + child gateways, none here
        assert report.scope_nodes < total / 5

    # 3. Mid-level failure spares the leaf trees.
    mid_id = network.root.children[0]
    if mid_id in session.active_domains():
        mid_tree = session.protocol(mid_id).tree
        links = sorted(mid_tree.tree_links())
        leaf_trees_before = {
            d: session.protocol(d).tree.tree_links()
            for d in session.active_domains()
            if network.domains[d].is_leaf
        }
        report2 = session.recover(
            FailureSet.links(links[0]), route_cache=route_cache
        )
        assert all(
            not network.domains[d].is_leaf for d in report2.domains_reconfigured
        )
        for d, before in leaf_trees_before.items():
            assert session.protocol(d).tree.tree_links() == before
