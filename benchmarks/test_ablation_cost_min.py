"""Extension — SMRP vs. a cost-minimizing protocol (paper §4.2's claim).

The paper only evaluates against SPF-based protocols but asserts, citing
Wei & Estrin [13], that "the results presented in this paper are also
applicable to the cost-minimizing multicast routing protocols".  This
bench tests that claim against the Takahashi–Matsuyama Steiner heuristic:

- TM's trees are indeed cheaper than both SPF's and SMRP's (sanity),
- TM concentrates members even harder than SPF (higher maximum SHR),
- consequently SMRP's recovery-distance advantage *persists* (is at
  least as large) against TM — the paper's claim.
"""

import numpy as np

from repro.graph.waxman import WaxmanConfig, waxman_topology
from repro.core.protocol import SMRPConfig, SMRPProtocol
from repro.core.shr import shr_table
from repro.metrics.recovery_metrics import worst_case_recovery
from repro.multicast.spf_protocol import SPFMulticastProtocol
from repro.multicast.steiner_protocol import SteinerMulticastProtocol


def run(scenarios: int = 10):
    stats = {
        "cost": {"tm": [], "spf": [], "smrp": []},
        "max_shr": {"tm": [], "spf": [], "smrp": []},
        "rd": {"tm": [], "spf": [], "smrp": []},
    }
    for seed in range(scenarios):
        topology = waxman_topology(
            WaxmanConfig(n=100, alpha=0.2, beta=0.25, seed=seed)
        ).topology
        rng = np.random.default_rng(300 + seed)
        members = [int(m) for m in rng.choice(range(1, 100), 30, replace=False)]

        trees = {
            "tm": SteinerMulticastProtocol(topology, 0, self_check=False).build(
                members
            ),
            "spf": SPFMulticastProtocol(topology, 0, self_check=False).build(
                members
            ),
            "smrp": SMRPProtocol(
                topology, 0, config=SMRPConfig(self_check=False)
            ).build(members),
        }
        for name, tree in trees.items():
            stats["cost"][name].append(tree.tree_cost())
            stats["max_shr"][name].append(max(shr_table(tree).values()))
            distances = []
            for member in members:
                strategy = "local" if name == "smrp" else "global"
                m = worst_case_recovery(topology, tree, member, strategy)
                if m.recovered:
                    distances.append(m.recovery_distance)
            if distances:
                stats["rd"][name].append(sum(distances) / len(distances))
    return stats


def test_smrp_vs_cost_minimizing_baseline(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    mean = lambda xs: sum(xs) / len(xs)
    cost = {k: mean(v) for k, v in stats["cost"].items()}
    shr = {k: mean(v) for k, v in stats["max_shr"].items()}
    rd = {k: mean(v) for k, v in stats["rd"].items()}
    print(
        f"\n         cost     max SHR   worst-case RD"
        f"\nTM     {cost['tm']:8.0f}  {shr['tm']:8.1f}  {rd['tm']:10.1f}"
        f"\nSPF    {cost['spf']:8.0f}  {shr['spf']:8.1f}  {rd['spf']:10.1f}"
        f"\nSMRP   {cost['smrp']:8.0f}  {shr['smrp']:8.1f}  {rd['smrp']:10.1f}"
    )
    # Sanity: TM actually minimizes cost among the three.
    assert cost["tm"] < cost["spf"] < cost["smrp"]
    # TM concentrates members at least as hard as SPF.
    assert shr["tm"] >= shr["spf"] - 1.0
    # And SMRP spreads them the most.
    assert shr["smrp"] < shr["spf"]
    # The paper's §4.2 claim: SMRP's recovery advantage carries over to
    # the cost-minimizing comparator (TM members recover no faster than
    # SPF members; SMRP's local detours beat both).
    assert rd["smrp"] < rd["spf"]
    assert rd["smrp"] < rd["tm"]
